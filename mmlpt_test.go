package mmlpt

// Integration tests over the public API: each test exercises the library
// the way a downstream user would, end to end across packet crafting, the
// simulator, the algorithms and alias resolution.

import (
	"testing"

	"mmlpt/internal/topo"
)

var (
	itSrc = MustParseAddr("192.0.2.1")
	itDst = MustParseAddr("198.51.100.77")
)

func TestPublicAPITraceDefaults(t *testing.T) {
	net, truth := BuildScenario(1, itSrc, itDst, Fig1UnmeshedDiamond)
	p := NewSimProber(net, itSrc, itDst)
	res := Trace(p, Options{Seed: 1})
	if !res.IP.ReachedDst {
		t.Fatal("not reached")
	}
	v, e := topo.SubgraphCoverage(res.IP.Graph, truth)
	if v != 1 || e != 1 {
		t.Fatalf("coverage %v %v", v, e)
	}
	if res.Probes() == 0 {
		t.Fatal("no probes counted")
	}
	if res.Multilevel != nil {
		t.Fatal("multilevel result without multilevel algorithm")
	}
}

func TestPublicAPIAlgorithmSpread(t *testing.T) {
	// All four algorithms must run and return sane results on a common
	// topology; their probe budgets must be ordered single < lite < mda.
	budgets := map[Algorithm]uint64{}
	for _, algo := range []Algorithm{AlgoSingleFlow, AlgoMDALite, AlgoMDA, AlgoMultilevel} {
		net, _ := BuildScenario(2, itSrc, itDst, SymmetricDiamond)
		p := NewSimProber(net, itSrc, itDst)
		res := Trace(p, Options{Algorithm: algo, Seed: 2})
		if !res.IP.ReachedDst {
			t.Fatalf("algo %d did not reach", algo)
		}
		budgets[algo] = res.Probes()
	}
	if !(budgets[AlgoSingleFlow] < budgets[AlgoMDALite] && budgets[AlgoMDALite] < budgets[AlgoMDA]) {
		t.Fatalf("budget ordering violated: single=%d lite=%d mda=%d",
			budgets[AlgoSingleFlow], budgets[AlgoMDALite], budgets[AlgoMDA])
	}
	if budgets[AlgoMultilevel] <= budgets[AlgoMDALite] {
		t.Fatalf("multilevel (%d) must cost more than the bare lite trace (%d)",
			budgets[AlgoMultilevel], budgets[AlgoMDALite])
	}
}

func TestPublicAPIFailureBoundOption(t *testing.T) {
	nk := StoppingPoints(0.05, 4)
	if nk[1] != 6 {
		t.Fatalf("n1 = %d", nk[1])
	}
	// A tighter bound must probe more.
	var loose, tight uint64
	for seed := uint64(0); seed < 6; seed++ {
		netL, _ := BuildScenario(seed, itSrc, itDst, MaxLength2Diamond)
		pL := NewSimProber(netL, itSrc, itDst)
		loose += Trace(pL, Options{Algorithm: AlgoMDA, Seed: seed, FailureBound: 0.05}).Probes()
		netT, _ := BuildScenario(seed, itSrc, itDst, MaxLength2Diamond)
		pT := NewSimProber(netT, itSrc, itDst)
		tight += Trace(pT, Options{Algorithm: AlgoMDA, Seed: seed, FailureBound: 0.005}).Probes()
	}
	if tight <= loose {
		t.Fatalf("tighter bound cheaper: %d <= %d", tight, loose)
	}
}

func TestPublicAPIMultilevel(t *testing.T) {
	// Hand-built network with two 2-interface routers at the wide hop.
	net := NewNetwork(3)
	alloc := NewAddrAllocator(MustParseAddr("10.2.0.1"))
	g := NewPathBuilder(alloc).Spread(4).Converge(1).End(itDst)
	hop1 := g.Hop(1)
	rA, rB := net.NewRouter(), net.NewRouter()
	for i, id := range hop1 {
		r := rA
		if i >= 2 {
			r = rB
		}
		net.AddIface(r, g.V(id).Addr)
	}
	net.EnsureIfaces(g, itDst)
	net.AddPath(itSrc, itDst, g)

	p := NewSimProber(net, itSrc, itDst)
	res := Trace(p, Options{Algorithm: AlgoMultilevel, Seed: 3, Rounds: 5})
	if res.Multilevel == nil {
		t.Fatal("no multilevel result")
	}
	if res.Multilevel.RouterGraph.Width(1) != 2 {
		t.Fatalf("router width %d, want 2", res.Multilevel.RouterGraph.Width(1))
	}
	if len(res.Multilevel.Rounds) != 6 {
		t.Fatalf("snapshots %d", len(res.Multilevel.Rounds))
	}
}

func TestPublicAPIGraphFailureProb(t *testing.T) {
	_, truth := BuildScenario(4, itSrc, itDst, SimplestDiamond)
	got := GraphFailureProb(truth, StoppingPoints(0.05, 16))
	if got != 0.03125 {
		t.Fatalf("failure prob %v", got)
	}
}

func TestPublicAPIPhiAffectsMeshingBudget(t *testing.T) {
	var p2, p4 uint64
	for seed := uint64(0); seed < 6; seed++ {
		net2, _ := BuildScenario(seed, itSrc, itDst, SymmetricDiamond)
		pr2 := NewSimProber(net2, itSrc, itDst)
		p2 += Trace(pr2, Options{Seed: seed, Phi: 2}).Probes()
		net4, _ := BuildScenario(seed, itSrc, itDst, SymmetricDiamond)
		pr4 := NewSimProber(net4, itSrc, itDst)
		p4 += Trace(pr4, Options{Seed: seed, Phi: 4}).Probes()
	}
	if p4 <= p2 {
		t.Fatalf("phi=4 (%d) not costlier than phi=2 (%d)", p4, p2)
	}
}

func TestPublicAPISwitchOver(t *testing.T) {
	net, _ := BuildScenario(5, itSrc, itDst, MeshedDiamond48)
	p := NewSimProber(net, itSrc, itDst)
	res := Trace(p, Options{Seed: 5})
	if !res.IP.SwitchedToMDA {
		t.Fatal("meshed topology did not force a switch")
	}
}

// TestPublicAPITraceEachStreams: OnTrace must observe every result in
// index order while TraceEach runs, and FirstIndex must shift the seed
// derivation so a resumed tail reproduces the full run's results.
func TestPublicAPITraceEachStreams(t *testing.T) {
	const runs = 8
	build := func() []Prober {
		ps := make([]Prober, runs)
		for i := range ps {
			net, _ := BuildScenario(uint64(100+i), itSrc, itDst, Fig1UnmeshedDiamond)
			ps[i] = NewSimProber(net, itSrc, itDst)
		}
		return ps
	}
	var seen []int
	opts := Options{Seed: 7, Workers: 4, OnTrace: func(i int, r *Result) {
		if r == nil || !r.IP.ReachedDst {
			t.Fatalf("trace %d did not reach the destination", i)
		}
		seen = append(seen, i)
	}}
	full := TraceEach(build(), opts)
	for i, want := range seen {
		if want != i {
			t.Fatalf("OnTrace order %v", seen)
		}
	}
	if len(seen) != runs {
		t.Fatalf("OnTrace saw %d of %d traces", len(seen), runs)
	}

	// Retrace only the tail with FirstIndex set: probe counts must match
	// the full run's tail exactly (same derived seeds, fresh networks).
	const skip = 3
	tailProbers := build()[skip:]
	tailOpts := Options{Seed: 7, Workers: 2, FirstIndex: skip}
	tail := TraceEach(tailProbers, tailOpts)
	for i, r := range tail {
		if got, want := r.Probes(), full[skip+i].Probes(); got != want {
			t.Fatalf("resumed trace %d sent %d probes, full run sent %d", skip+i, got, want)
		}
	}
}
