// Command surveyd coordinates a distributed survey: it shards the
// deterministic (src,dst) pair space into leased work units, hands them
// to runner processes (`survey -join`) over HTTP, checkpoints shipped
// shards durably, reassigns units whose runners die, meters the fleet's
// probe rate per destination /24 prefix, and — once every unit has
// shipped — merges the shards into a record log and atlas snapshot
// byte-identical to a single-machine `survey` run.
//
//	GET  /healthz     service liveness
//	GET  /v1/status   units, records, leases, per-runner table
//	POST /v1/claim    lease the next unclaimed work unit
//	POST /v1/renew    heartbeat a lease
//	POST /v1/ship     deliver a unit's record log
//	POST /v1/budget   acquire probe tokens for a destination prefix
//
// The work directory holds one shard file per shipped unit plus an
// atomically-rewritten manifest; restarting surveyd with the same flags
// and -resume re-traces only units that never durably shipped.
//
// Usage:
//
//	surveyd -level ip -pairs 5000 -out fleet.jsonl -atlas fleet.atlas -dir work/
//	survey -join http://coordinator:8460 -runner-id runner-1   (xN machines)
//
// surveyd exits 0 once the merge completes; it lingers briefly so
// runners polling for work hear "done" instead of a connection error.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"mmlpt/internal/atlas"
	"mmlpt/internal/dispatch"
)

func main() {
	var (
		level        = flag.String("level", "ip", "survey level: ip or router")
		pairs        = flag.Int("pairs", 1000, "number of source-destination pairs")
		seed         = flag.Uint64("seed", 1, "random seed")
		phi          = flag.Int("phi", 2, "MDA-Lite meshing budget")
		rounds       = flag.Int("rounds", 10, "alias rounds (router level)")
		dir          = flag.String("dir", "", "work directory for shards and the manifest (required)")
		out          = flag.String("out", "", "write the merged survey record log (JSONL) here")
		atlasOut     = flag.String("atlas", "", "write the merged atlas snapshot here")
		atlasShards  = flag.Int("atlas-shards", 0, "atlas ingestion shards (0 = default; snapshot bytes are identical for every value)")
		atlasWorkers = flag.Int("atlas-workers", 0, "atlas merge workers (0 = GOMAXPROCS; snapshot bytes are identical for every value)")
		unitSize     = flag.Int("unit-size", dispatch.DefaultUnitSize, "survey pairs per work unit")
		leaseTTL     = flag.Duration("lease-ttl", dispatch.DefaultLeaseTTL, "lease duration; runners heartbeat at a third of this")
		budgetRate   = flag.Float64("budget-rate", 0, "fleet-wide probe ceiling per destination /24 prefix, probes/second (0 = unmetered)")
		budgetBurst  = flag.Float64("budget-burst", 0, "probe budget burst depth (0 = same as -budget-rate)")
		listen       = flag.String("listen", ":8460", "HTTP listen address")
		resume       = flag.Bool("resume", false, "restore shipped units from the manifest in -dir")
		prog         = flag.Bool("progress", false, "report fleet progress to stderr while running")
		linger       = flag.Duration("linger", 2*time.Second, "serve this long after the merge so polling runners hear done")
	)
	flag.Parse()

	if *dir == "" {
		fmt.Fprintln(os.Stderr, "usage: surveyd -dir work/ [-level ip] [-pairs N] [-out merged.jsonl] [-atlas merged.atlas] [-listen :8460]")
		os.Exit(2)
	}
	switch *level {
	case "ip", "router":
	default:
		fmt.Fprintf(os.Stderr, "unknown level %q (ip or router)\n", *level)
		os.Exit(2)
	}
	if *out == "" && *atlasOut == "" {
		fmt.Fprintln(os.Stderr, "surveyd needs at least one of -out or -atlas: a survey with no merged output is wasted probing")
		os.Exit(2)
	}

	coord, err := dispatch.NewCoordinator(dispatch.CoordinatorConfig{
		Spec: dispatch.Spec{
			Level: *level, Pairs: *pairs, Seed: *seed, Phi: *phi, Rounds: *rounds,
			BudgetRate: *budgetRate, BudgetBurst: *budgetBurst,
		},
		Dir: *dir, OutJSONL: *out, AtlasPath: *atlasOut,
		AtlasOptions: atlas.Options{Shards: *atlasShards, MergeWorkers: *atlasWorkers},
		UnitSize:     *unitSize,
		LeaseTTL:     *leaseTTL,
		Resume:       *resume,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fleet := coord.Fleet()

	srv := &http.Server{
		Addr:              *listen,
		Handler:           coord.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()

	if *prog {
		go func() {
			t := time.NewTicker(2 * time.Second)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					fmt.Fprintln(os.Stderr, fleet.Snapshot())
				case <-coord.Done():
					return
				}
			}
		}()
	}

	st := coord.Status()
	fmt.Fprintf(os.Stderr, "surveyd: coordinating %d units (%d pairs, level %s) on %s\n",
		st.Units, *pairs, *level, *listen)

	select {
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "surveyd: serve: %v\n", err)
		os.Exit(1)
	case <-coord.Done():
	}
	if err := coord.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "surveyd: merge: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, fleet.Snapshot())
	if *out != "" {
		fmt.Printf("wrote merged record log to %s\n", *out)
	}
	if *atlasOut != "" {
		fmt.Printf("wrote merged atlas snapshot to %s\n", *atlasOut)
	}
	fmt.Print(coord.Summary())
	// Keep answering /v1/claim with "done" briefly so runners exit
	// cleanly rather than erroring on a vanished coordinator.
	time.Sleep(*linger)
	_ = srv.Close()
}
