// Command atlasd serves atlas queries over HTTP: the topology service
// view of a cross-trace snapshot written by cmd/survey -atlas. It opens
// the snapshot through internal/atlas/serve — indexed (v2) snapshots
// are decoded shard-by-shard on demand, never whole — and answers:
//
//	GET /healthz            service liveness
//	GET /v1/stats           merged-content counts
//	GET /v1/census          cross-pair diamond census
//	GET /v1/router/{addr}   the router (alias component) owning addr
//	GET /v1/addr/{addr}     provenance: which pairs saw addr, at which hops
//
// SIGHUP atomically swaps in the current contents of -snapshot (e.g.
// after `atlas compact` merged newly published survey deltas); in-flight
// queries finish on the old generation.
//
// Usage:
//
//	atlasd -snapshot internet.atlas -listen :8430
//	curl localhost:8430/v1/router/10.0.0.7
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mmlpt/internal/atlas/serve"
)

func main() {
	var (
		snapshot = flag.String("snapshot", "", "atlas snapshot to serve (required; v1 or v2)")
		listen   = flag.String("listen", ":8430", "HTTP listen address")
		cache    = flag.Int("cache", 0, "decoded shards kept resident per generation (0 = default)")
	)
	flag.Parse()
	if *snapshot == "" {
		fmt.Fprintln(os.Stderr, "usage: atlasd -snapshot internet.atlas [-listen :8430] [-cache N]")
		os.Exit(2)
	}

	svc, err := serve.Open(*snapshot, serve.Options{CacheShards: *cache})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer svc.Close()

	srv := &http.Server{
		Addr:              *listen,
		Handler:           newMux(svc),
		ReadHeaderTimeout: 5 * time.Second,
	}

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if err := svc.Swap(*snapshot); err != nil {
				fmt.Fprintf(os.Stderr, "atlasd: swap failed, keeping current generation: %v\n", err)
				continue
			}
			st, _ := svc.Stats()
			fmt.Fprintf(os.Stderr, "atlasd: swapped in %s (%d nodes, %d routers)\n", *snapshot, st.Nodes, st.Routers)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-stop
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	st, err := svc.Stats()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "atlasd: serving %s (%d nodes, %d routers, %d diamonds) on %s\n",
		*snapshot, st.Nodes, st.Routers, st.Diamonds, *listen)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	<-done
}
