package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"mmlpt/internal/atlas/serve"
	"mmlpt/internal/traceio"
)

func testService(t *testing.T) *serve.Service {
	t.Helper()
	s := &traceio.AtlasSnapshot{
		Pairs: []traceio.AtlasPair{{Pair: 0, Src: "192.0.2.1", Dst: "203.0.113.1"}},
		Nodes: []traceio.AtlasNode{
			{Addr: "10.0.0.1", Seen: [][2]int{{0, 1}}},
			{Addr: "10.0.0.2", Seen: [][2]int{{0, 2}}},
			{Addr: "10.0.0.3", Seen: [][2]int{{0, 2}}},
			{Addr: "10.0.0.4", Seen: [][2]int{{0, 3}}},
		},
		Edges:   []traceio.AtlasEdge{{0, 1}, {0, 2}, {1, 3}, {2, 3}},
		Routers: []traceio.AtlasRouter{{Addrs: []string{"10.0.0.2", "10.0.0.3"}}},
		Diamonds: []traceio.AtlasDiamond{
			{Div: "10.0.0.1", Conv: "10.0.0.4", Count: 1, Pairs: []int{0}, MaxWidth: 2, MaxLength: 2},
		},
	}
	path := filepath.Join(t.TempDir(), "t.atlas")
	if err := traceio.WriteAtlasFile(path, s); err != nil {
		t.Fatal(err)
	}
	svc, err := serve.Open(path, serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return svc
}

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("GET %s: Content-Type = %q", path, ct)
	}
	return rec.Code, rec.Body.String()
}

func TestHandlerRoutes(t *testing.T) {
	t.Parallel()
	h := newMux(testService(t))

	code, body := get(t, h, "/healthz")
	if code != http.StatusOK || body != `{"ok":true}`+"\n" {
		t.Fatalf("/healthz: %d %q", code, body)
	}

	code, body = get(t, h, "/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("/v1/stats: %d %q", code, body)
	}
	var st statsResponse
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st != (statsResponse{Pairs: 1, Nodes: 4, Edges: 4, Routers: 1, Diamonds: 1}) {
		t.Fatalf("/v1/stats: %+v", st)
	}

	code, body = get(t, h, "/v1/census")
	if code != http.StatusOK {
		t.Fatalf("/v1/census: %d %q", code, body)
	}
	var cs censusResponse
	if err := json.Unmarshal([]byte(body), &cs); err != nil {
		t.Fatal(err)
	}
	want := censusEntry{Div: "10.0.0.1", Conv: "10.0.0.4", Count: 1, Pairs: 1, MaxWidth: 2, MaxLength: 2}
	if len(cs.Diamonds) != 1 || cs.Diamonds[0] != want {
		t.Fatalf("/v1/census: %+v", cs)
	}

	// Router by member, by representative, and the unaliased singleton.
	for _, q := range []string{"10.0.0.2", "10.0.0.3"} {
		code, body = get(t, h, "/v1/router/"+q)
		if code != http.StatusOK {
			t.Fatalf("/v1/router/%s: %d %q", q, code, body)
		}
		var rr routerResponse
		if err := json.Unmarshal([]byte(body), &rr); err != nil {
			t.Fatal(err)
		}
		if rr.Addr != q || len(rr.Router) != 2 || rr.Router[0] != "10.0.0.2" || rr.Router[1] != "10.0.0.3" {
			t.Fatalf("/v1/router/%s: %+v", q, rr)
		}
	}
	code, body = get(t, h, "/v1/router/10.0.0.1")
	if code != http.StatusOK || !strings.Contains(body, `"router":["10.0.0.1"]`) {
		t.Fatalf("singleton router: %d %q", code, body)
	}

	code, body = get(t, h, "/v1/addr/10.0.0.2")
	if code != http.StatusOK {
		t.Fatalf("/v1/addr: %d %q", code, body)
	}
	var ar addrResponse
	if err := json.Unmarshal([]byte(body), &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Addr != "10.0.0.2" || len(ar.Seen) != 1 || ar.Seen[0] != (obsResponse{Pair: 0, Hop: 2}) {
		t.Fatalf("/v1/addr: %+v", ar)
	}
}

func TestHandlerErrorPaths(t *testing.T) {
	t.Parallel()
	h := newMux(testService(t))

	// 404: well-formed but absent addresses, and unknown routes.
	for _, path := range []string{
		"/v1/router/10.9.9.9", "/v1/addr/10.9.9.9",
		"/v1/nope", "/", "/v1/stats/extra",
	} {
		code, body := get(t, h, path)
		if code != http.StatusNotFound {
			t.Errorf("GET %s: %d %q, want 404", path, code, body)
		}
		var e errorResponse
		if err := json.Unmarshal([]byte(body), &e); err != nil || e.Error == "" {
			t.Errorf("GET %s: non-JSON error body %q", path, body)
		}
	}

	// 400: malformed addresses.
	for _, path := range []string{
		"/v1/router/bogus", "/v1/addr/bogus", "/v1/router/", "/v1/addr/",
		"/v1/addr/10.0.0.2/extra",
	} {
		code, body := get(t, h, path)
		if code != http.StatusBadRequest {
			t.Errorf("GET %s: %d %q, want 400", path, code, body)
		}
	}

	// 405: non-GET on every route.
	for _, path := range []string{"/healthz", "/v1/stats", "/v1/census", "/v1/router/10.0.0.2", "/v1/addr/10.0.0.2"} {
		req := httptest.NewRequest(http.MethodPost, path, strings.NewReader("{}"))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("POST %s: %d, want 405", path, rec.Code)
		}
	}
}

// The service keeps answering after a mid-flight generation swap.
func TestHandlerAfterSwap(t *testing.T) {
	t.Parallel()
	svc := testService(t)
	h := newMux(svc)
	path, err := svc.Path()
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Swap(path); err != nil {
		t.Fatal(err)
	}
	code, body := get(t, h, "/v1/stats")
	if code != http.StatusOK || !strings.Contains(body, `"nodes":4`) {
		t.Fatalf("post-swap /v1/stats: %d %q", code, body)
	}
}
