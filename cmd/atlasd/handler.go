package main

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"

	"mmlpt/internal/atlas/serve"
	"mmlpt/internal/packet"
)

// The wire types. Field order is fixed and the encoder appends a
// newline, so responses are stable bytes for the CI golden diff.

type statsResponse struct {
	Pairs    int `json:"pairs"`
	Nodes    int `json:"nodes"`
	Edges    int `json:"edges"`
	Routers  int `json:"routers"`
	Diamonds int `json:"diamonds"`
}

type routerResponse struct {
	Addr   string   `json:"addr"`
	Router []string `json:"router"`
}

type obsResponse struct {
	Pair int `json:"pair"`
	Hop  int `json:"hop"`
}

type addrResponse struct {
	Addr string        `json:"addr"`
	Seen []obsResponse `json:"seen"`
}

type censusEntry struct {
	Div       string `json:"div"`
	Conv      string `json:"conv"`
	Count     int    `json:"count"`
	Pairs     int    `json:"pairs"`
	MaxWidth  int    `json:"max_width"`
	MaxLength int    `json:"max_length"`
}

type censusResponse struct {
	Diamonds []censusEntry `json:"diamonds"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}

// queryErr maps a serve-layer error onto a status: absent address 404,
// closed/corrupt snapshot 500.
func queryErr(w http.ResponseWriter, err error) {
	if errors.Is(err, serve.ErrNotFound) {
		writeErr(w, http.StatusNotFound, err.Error())
		return
	}
	writeErr(w, http.StatusInternalServerError, err.Error())
}

// newMux routes the v1 API over one serve.Service. Address-typed routes
// parse the path suffix themselves (Go 1.21 ServeMux has no patterns):
// /v1/router/{addr} and /v1/addr/{addr} answer 400 for a malformed
// address and 404 for a well-formed one the atlas never saw.
func newMux(svc *serve.Service) http.Handler {
	mux := http.NewServeMux()

	get := func(h http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodGet {
				writeErr(w, http.StatusMethodNotAllowed, "method not allowed")
				return
			}
			h(w, r)
		}
	}

	mux.HandleFunc("/healthz", get(func(w http.ResponseWriter, r *http.Request) {
		if _, err := svc.Stats(); err != nil {
			writeErr(w, http.StatusServiceUnavailable, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	}))

	mux.HandleFunc("/v1/stats", get(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/stats" {
			writeErr(w, http.StatusNotFound, "no such route")
			return
		}
		st, err := svc.Stats()
		if err != nil {
			queryErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, statsResponse{
			Pairs: st.Pairs, Nodes: st.Nodes, Edges: st.Edges,
			Routers: st.Routers, Diamonds: st.Diamonds,
		})
	}))

	mux.HandleFunc("/v1/census", get(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/census" {
			writeErr(w, http.StatusNotFound, "no such route")
			return
		}
		ds, err := svc.DiamondCensus()
		if err != nil {
			queryErr(w, err)
			return
		}
		resp := censusResponse{Diamonds: make([]censusEntry, len(ds))}
		for i, d := range ds {
			resp.Diamonds[i] = censusEntry{
				Div: d.Div, Conv: d.Conv, Count: d.Count, Pairs: len(d.Pairs),
				MaxWidth: d.MaxWidth, MaxLength: d.MaxLength,
			}
		}
		writeJSON(w, http.StatusOK, resp)
	}))

	pathAddr := func(w http.ResponseWriter, r *http.Request, prefix string) (packet.Addr, bool) {
		raw := strings.TrimPrefix(r.URL.Path, prefix)
		if raw == "" || strings.Contains(raw, "/") {
			writeErr(w, http.StatusBadRequest, "expected "+prefix+"{addr}")
			return 0, false
		}
		addr, err := packet.ParseAddr(raw)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err.Error())
			return 0, false
		}
		return addr, true
	}

	mux.HandleFunc("/v1/router/", get(func(w http.ResponseWriter, r *http.Request) {
		addr, ok := pathAddr(w, r, "/v1/router/")
		if !ok {
			return
		}
		members, err := svc.Router(addr)
		if err != nil {
			queryErr(w, err)
			return
		}
		resp := routerResponse{Addr: addr.String(), Router: make([]string, len(members))}
		for i, m := range members {
			resp.Router[i] = m.String()
		}
		writeJSON(w, http.StatusOK, resp)
	}))

	mux.HandleFunc("/v1/addr/", get(func(w http.ResponseWriter, r *http.Request) {
		addr, ok := pathAddr(w, r, "/v1/addr/")
		if !ok {
			return
		}
		obs, err := svc.Provenance(addr)
		if err != nil {
			queryErr(w, err)
			return
		}
		resp := addrResponse{Addr: addr.String(), Seen: make([]obsResponse, len(obs))}
		for i, o := range obs {
			resp.Seen[i] = obsResponse{Pair: o.Pair, Hop: o.Hop}
		}
		writeJSON(w, http.StatusOK, resp)
	}))

	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeErr(w, http.StatusNotFound, "no such route")
	})

	return mux
}
