// Command atlas answers queries over a cross-trace topology atlas
// snapshot, the file cmd/survey -atlas writes: the merged multilevel
// view of every traced pair, with aggregated router identities, the
// cross-pair diamond census, and per-address provenance.
//
// Usage:
//
//	atlas -stats internet.atlas            # counts + aggregated router-size CDF (Fig 12, atlas variant)
//	atlas -routers internet.atlas          # every aggregated router, one line each
//	atlas -census internet.atlas           # distinct diamonds across all pairs
//	atlas -addr 10.0.0.7 internet.atlas    # which pairs saw the address, at which hops
package main

import (
	"flag"
	"fmt"
	"os"

	"mmlpt/internal/atlas"
	"mmlpt/internal/experiments"
	"mmlpt/internal/packet"
)

func main() {
	var (
		statsQ  = flag.Bool("stats", false, "print merged-content stats and the aggregated router-size CDF")
		routers = flag.Bool("routers", false, "print every aggregated router (alias component)")
		census  = flag.Bool("census", false, "print the cross-pair diamond census")
		addrQ   = flag.String("addr", "", "print the provenance of one address (pairs and hops that saw it)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: atlas [-stats|-routers|-census|-addr A.B.C.D] snapshot.atlas")
		os.Exit(2)
	}
	a, err := atlas.Load(flag.Arg(0), atlas.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *statsQ || (!*routers && !*census && *addrQ == "") {
		fmt.Print(experiments.FormatFig12Atlas(a))
	}
	if *routers {
		for _, g := range a.Routers() {
			fmt.Printf("router[%d]", len(g))
			for _, addr := range g {
				fmt.Printf(" %s", addr)
			}
			fmt.Println()
		}
	}
	if *census {
		fmt.Println("# div conv encounters pairs max_width max_length")
		for _, d := range a.Census() {
			fmt.Printf("%s %s %d %d %d %d\n", d.Div, d.Conv, d.Count, len(d.Pairs), d.MaxWidth, d.MaxLength)
		}
	}
	if *addrQ != "" {
		addr, err := packet.ParseAddr(*addrQ)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		obs, ok := a.Provenance(addr)
		if !ok {
			fmt.Printf("%s: not in atlas\n", addr)
			os.Exit(1)
		}
		for _, o := range obs {
			fmt.Printf("%s pair %d hop %d\n", addr, o.Pair, o.Hop)
		}
	}
}
