// Command atlas answers queries over a cross-trace topology atlas
// snapshot, the file cmd/survey -atlas writes: the merged multilevel
// view of every traced pair, with aggregated router identities, the
// cross-pair diamond census, and per-address provenance. Queries go
// through the same internal/atlas/serve layer as the atlasd HTTP
// service, so point lookups on an indexed (v2) snapshot decode only the
// shards they touch.
//
// Usage:
//
//	atlas stats internet.atlas             # counts + aggregated router-size CDF (Fig 12, atlas variant)
//	atlas routers internet.atlas           # every aggregated router, one line each
//	atlas router 10.0.0.7 internet.atlas   # the router component owning one address
//	atlas census internet.atlas            # distinct diamonds across all pairs
//	atlas addr 10.0.0.7 internet.atlas     # which pairs saw the address, at which hops
//	atlas compact -o full.atlas base.atlas base.atlas.d*  # merge base + deltas
//
// The pre-subcommand flag style (atlas -stats snapshot.atlas, -routers,
// -census, -addr) still works for one release as a deprecated alias.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"mmlpt/internal/atlas"
	"mmlpt/internal/atlas/serve"
	"mmlpt/internal/experiments"
	"mmlpt/internal/packet"
	"mmlpt/internal/traceio"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

const usageText = `usage:
  atlas stats snapshot.atlas             counts + aggregated router-size CDF
  atlas routers snapshot.atlas           every aggregated router
  atlas router A.B.C.D snapshot.atlas    the router component owning one address
  atlas census snapshot.atlas            cross-pair diamond census
  atlas addr A.B.C.D snapshot.atlas      provenance of one address
  atlas compact -o out.atlas in.atlas [in2.atlas ...]
                                         merge snapshots/deltas into one
`

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprint(stderr, usageText)
		return 2
	}
	switch args[0] {
	case "stats", "routers", "router", "census", "addr":
		return runQuery(args[0], args[1:], stdout, stderr)
	case "compact":
		return runCompact(args[1:], stdout, stderr)
	case "-h", "-help", "--help", "help":
		fmt.Fprint(stdout, usageText)
		return 0
	}
	return runLegacy(args, stdout, stderr)
}

// runQuery handles the read subcommands, all backed by one serve
// session over the snapshot.
func runQuery(cmd string, args []string, stdout, stderr io.Writer) int {
	wantAddr := cmd == "router" || cmd == "addr"
	want := 1
	if wantAddr {
		want = 2
	}
	if len(args) != want {
		fmt.Fprint(stderr, usageText)
		return 2
	}
	var q packet.Addr
	if wantAddr {
		var err error
		if q, err = packet.ParseAddr(args[0]); err != nil {
			fmt.Fprintf(stderr, "atlas %s: %v\n", cmd, err)
			return 2
		}
	}
	svc, err := serve.Open(args[len(args)-1], serve.Options{})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	defer svc.Close()
	if err := query(cmd, q, svc, stdout); err != nil {
		fmt.Fprintf(stderr, "atlas %s: %v\n", cmd, err)
		return 1
	}
	return 0
}

func query(cmd string, q packet.Addr, svc *serve.Service, stdout io.Writer) error {
	switch cmd {
	case "stats":
		return printStats(svc, stdout)
	case "routers":
		groups, err := svc.Routers()
		if err != nil {
			return err
		}
		for _, g := range groups {
			printRouter(stdout, g)
		}
		return nil
	case "router":
		g, err := svc.Router(q)
		if err != nil {
			return err
		}
		printRouter(stdout, g)
		return nil
	case "census":
		ds, err := svc.DiamondCensus()
		if err != nil {
			return err
		}
		printCensus(stdout, ds)
		return nil
	case "addr":
		obs, err := svc.Provenance(q)
		if err != nil {
			return err
		}
		for _, o := range obs {
			fmt.Fprintf(stdout, "%s pair %d hop %d\n", q, o.Pair, o.Hop)
		}
		return nil
	}
	return fmt.Errorf("unknown query %q", cmd)
}

func printStats(svc *serve.Service, stdout io.Writer) error {
	st, err := svc.Stats()
	if err != nil {
		return err
	}
	groups, err := svc.Routers()
	if err != nil {
		return err
	}
	sizes := make([]int, len(groups))
	for i, g := range groups {
		sizes[i] = len(g)
	}
	fmt.Fprint(stdout, experiments.FormatFig12Sizes(st, sizes))
	return nil
}

func printRouter(w io.Writer, g []packet.Addr) {
	fmt.Fprintf(w, "router[%d]", len(g))
	for _, addr := range g {
		fmt.Fprintf(w, " %s", addr)
	}
	fmt.Fprintln(w)
}

func printCensus(w io.Writer, ds []traceio.AtlasDiamond) {
	fmt.Fprintln(w, "# div conv encounters pairs max_width max_length")
	for _, d := range ds {
		fmt.Fprintf(w, "%s %s %d %d %d %d\n", d.Div, d.Conv, d.Count, len(d.Pairs), d.MaxWidth, d.MaxLength)
	}
}

func runCompact(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("atlas compact", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "", "output snapshot path (required)")
	shards := fs.Int("shards", 0, "atlas merge shards (0 = default; output bytes are identical for every value)")
	workers := fs.Int("workers", 0, "merge workers for the streaming compaction (0 = GOMAXPROCS, 1 = serial; output bytes are identical for every value)")
	quiet := fs.Bool("q", false, "suppress per-input and per-shard progress on stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *out == "" || fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: atlas compact -o out.atlas in.atlas [in2.atlas ...]")
		return 2
	}
	inputs := fs.Args()
	progress := func(format string, args ...any) {
		fmt.Fprintf(stderr, "compact: "+format+"\n", args...)
	}
	if *quiet {
		progress = nil
	}
	opt := atlas.Options{Shards: *shards, MergeWorkers: *workers}
	if err := atlas.CompactWithProgress(*out, inputs[0], inputs[1:], opt, progress); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	// The v2 header carries the totals; no need to re-decode the file
	// we just wrote only to count its sections.
	r, err := traceio.OpenAtlasFile(*out)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	h := r.Header()
	r.Close()
	st := atlas.Stats{Pairs: h.Pairs, Nodes: h.Nodes, Edges: h.Edges, Routers: h.Routers, Diamonds: h.Diamonds}
	fmt.Fprintf(stdout, "compacted %d snapshots into %s (%s)\n", len(inputs), *out, st)
	return 0
}

// runLegacy keeps the pre-subcommand flag interface working for one
// release, with a deprecation notice on stderr. Same serve backend,
// same output — except the old silent/empty behavior for an absent
// -addr, which now errors with exit 1 like the addr subcommand.
func runLegacy(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("atlas", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		statsQ  = fs.Bool("stats", false, "print merged-content stats and the aggregated router-size CDF")
		routers = fs.Bool("routers", false, "print every aggregated router (alias component)")
		census  = fs.Bool("census", false, "print the cross-pair diamond census")
		addrQ   = fs.String("addr", "", "print the provenance of one address (pairs and hops that saw it)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprint(stderr, usageText)
		return 2
	}
	fmt.Fprintln(stderr, "warning: flag-style invocation is deprecated; use the subcommands 'atlas stats|routers|router|census|addr' (see atlas -help)")

	var q packet.Addr
	if *addrQ != "" {
		var err error
		if q, err = packet.ParseAddr(*addrQ); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}
	svc, err := serve.Open(fs.Arg(0), serve.Options{})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	defer svc.Close()

	if *statsQ || (!*routers && !*census && *addrQ == "") {
		if err := printStats(svc, stdout); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	if *routers {
		if err := query("routers", 0, svc, stdout); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	if *census {
		if err := query("census", 0, svc, stdout); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	if *addrQ != "" {
		obs, err := svc.Provenance(q)
		if err != nil {
			if errors.Is(err, serve.ErrNotFound) {
				fmt.Fprintf(stderr, "%s: not in atlas\n", q)
			} else {
				fmt.Fprintln(stderr, err)
			}
			return 1
		}
		for _, o := range obs {
			fmt.Fprintf(stdout, "%s pair %d hop %d\n", q, o.Pair, o.Hop)
		}
	}
	return 0
}
