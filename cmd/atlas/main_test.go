package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mmlpt/internal/traceio"
)

func testSnapshot(t *testing.T) string {
	t.Helper()
	s := &traceio.AtlasSnapshot{
		Pairs: []traceio.AtlasPair{{Pair: 0, Src: "192.0.2.1", Dst: "203.0.113.1"}},
		Nodes: []traceio.AtlasNode{
			{Addr: "10.0.0.1", Seen: [][2]int{{0, 1}}},
			{Addr: "10.0.0.2", Seen: [][2]int{{0, 2}}},
			{Addr: "10.0.0.3", Seen: [][2]int{{0, 2}}},
			{Addr: "10.0.0.4", Seen: [][2]int{{0, 3}}},
		},
		Edges:   []traceio.AtlasEdge{{0, 1}, {0, 2}, {1, 3}, {2, 3}},
		Routers: []traceio.AtlasRouter{{Addrs: []string{"10.0.0.2", "10.0.0.3"}}},
		Diamonds: []traceio.AtlasDiamond{
			{Div: "10.0.0.1", Conv: "10.0.0.4", Count: 1, Pairs: []int{0}, MaxWidth: 2, MaxLength: 2},
		},
	}
	path := filepath.Join(t.TempDir(), "t.atlas")
	if err := traceio.WriteAtlasFile(path, s); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestSubcommands(t *testing.T) {
	t.Parallel()
	path := testSnapshot(t)

	code, out, _ := runCLI(t, "stats", path)
	if code != 0 || !strings.Contains(out, "4 addresses") || !strings.Contains(out, "1 routers") {
		t.Fatalf("stats: code=%d out=%q", code, out)
	}

	code, out, _ = runCLI(t, "routers", path)
	if code != 0 || out != "router[2] 10.0.0.2 10.0.0.3\n" {
		t.Fatalf("routers: code=%d out=%q", code, out)
	}

	// By member and by representative; singleton for unaliased.
	for _, a := range []string{"10.0.0.2", "10.0.0.3"} {
		code, out, _ = runCLI(t, "router", a, path)
		if code != 0 || out != "router[2] 10.0.0.2 10.0.0.3\n" {
			t.Fatalf("router %s: code=%d out=%q", a, code, out)
		}
	}
	code, out, _ = runCLI(t, "router", "10.0.0.1", path)
	if code != 0 || out != "router[1] 10.0.0.1\n" {
		t.Fatalf("router singleton: code=%d out=%q", code, out)
	}

	code, out, _ = runCLI(t, "census", path)
	if code != 0 || !strings.Contains(out, "10.0.0.1 10.0.0.4 1 1 2 2") {
		t.Fatalf("census: code=%d out=%q", code, out)
	}

	code, out, _ = runCLI(t, "addr", "10.0.0.2", path)
	if code != 0 || out != "10.0.0.2 pair 0 hop 2\n" {
		t.Fatalf("addr: code=%d out=%q", code, out)
	}
}

// The satellite fix: querying an absent address exits non-zero with a
// clear error, for the subcommands and the legacy flags alike.
func TestAbsentAddressErrors(t *testing.T) {
	t.Parallel()
	path := testSnapshot(t)
	for _, args := range [][]string{
		{"addr", "10.9.9.9", path},
		{"router", "10.9.9.9", path},
		{"-addr", "10.9.9.9", path},
	} {
		code, out, errOut := runCLI(t, args...)
		if code != 1 {
			t.Fatalf("%v: code = %d, want 1", args, code)
		}
		if out != "" {
			t.Fatalf("%v: stdout = %q, want empty", args, out)
		}
		if !strings.Contains(errOut, "not in atlas") {
			t.Fatalf("%v: stderr = %q", args, errOut)
		}
	}
	// Malformed address: usage error, not a query miss.
	if code, _, _ := runCLI(t, "addr", "bogus", path); code != 2 {
		t.Fatalf("malformed addr code = %d, want 2", code)
	}
}

func TestLegacyFlagsStillWork(t *testing.T) {
	t.Parallel()
	path := testSnapshot(t)
	code, out, errOut := runCLI(t, "-stats", path)
	if code != 0 || !strings.Contains(out, "4 addresses") {
		t.Fatalf("-stats: code=%d out=%q", code, out)
	}
	if !strings.Contains(errOut, "deprecated") {
		t.Fatalf("-stats: no deprecation notice, stderr=%q", errOut)
	}
	code, out, _ = runCLI(t, "-routers", path)
	if code != 0 || out != "router[2] 10.0.0.2 10.0.0.3\n" {
		t.Fatalf("-routers: code=%d out=%q", code, out)
	}
	code, out, _ = runCLI(t, "-addr", "10.0.0.2", path)
	if code != 0 || out != "10.0.0.2 pair 0 hop 2\n" {
		t.Fatalf("-addr: code=%d out=%q", code, out)
	}
	// Bare legacy invocation defaults to stats.
	code, out, _ = runCLI(t, path)
	if code != 0 || !strings.Contains(out, "Fig 12") {
		t.Fatalf("legacy default: code=%d out=%q", code, out)
	}
}

func TestCompactSubcommand(t *testing.T) {
	t.Parallel()
	base := testSnapshot(t)
	out := filepath.Join(t.TempDir(), "out.atlas")
	code, stdout, errOut := runCLI(t, "compact", "-o", out, base, base)
	if code != 0 {
		t.Fatalf("compact: code=%d stderr=%q", code, errOut)
	}
	if !strings.Contains(stdout, "compacted 2 snapshots") {
		t.Fatalf("compact stdout = %q", stdout)
	}
	// Merging a snapshot with itself is idempotent for topology; only
	// census encounter counts sum. Spot-check it round-trips.
	s, err := traceio.ReadAtlasFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Nodes) != 4 || s.Diamonds[0].Count != 2 {
		t.Fatalf("compacted snapshot: %d nodes, census count %d", len(s.Nodes), s.Diamonds[0].Count)
	}
	if code, _, _ := runCLI(t, "compact", "-o", "", base); code != 2 {
		t.Fatal("compact without -o must be a usage error")
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatal(err)
	}
}

func TestUsageErrors(t *testing.T) {
	t.Parallel()
	if code, _, _ := runCLI(t); code != 2 {
		t.Fatal("no args must be a usage error")
	}
	if code, _, _ := runCLI(t, "stats"); code != 2 {
		t.Fatal("stats without snapshot must be a usage error")
	}
	code, out, _ := runCLI(t, "help")
	if code != 0 || !strings.Contains(out, "usage:") {
		t.Fatalf("help: code=%d out=%q", code, out)
	}
}
