// Command fakeroute statistically validates a multipath tracing
// algorithm's failure-probability bound against simulated topologies
// (Sec 3 of the paper).
//
// Usage:
//
//	fakeroute -shape simplest -samples 50 -runs 1000
//
// It prints the exact predicted failure probability (dynamic program over
// the stopping rule), the measured failure rate over samples × runs
// executions, and the 95% confidence interval — reproducing the paper's
// 0.03125 predicted / 0.03206 ± 0.00156 measured example at full scale.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"mmlpt/internal/experiments"
	"mmlpt/internal/fakeroute"
	"mmlpt/internal/mda"
	"mmlpt/internal/packet"
	"mmlpt/internal/topo"
	"mmlpt/internal/traceio"
)

var shapes = map[string]func(*fakeroute.AddrAllocator, packet.Addr) *topo.Graph{
	"simplest":   fakeroute.SimplestDiamond,
	"fig1":       fakeroute.Fig1UnmeshedDiamond,
	"fig1meshed": fakeroute.Fig1MeshedDiamond,
	"maxlen2":    fakeroute.MaxLength2Diamond,
	"symmetric":  fakeroute.SymmetricDiamond,
	"asymmetric": fakeroute.AsymmetricDiamond,
	"meshed48":   fakeroute.MeshedDiamond48,
}

func main() {
	var (
		shape    = flag.String("shape", "simplest", "topology to validate against")
		topoFile = flag.String("topology", "", "validate against a topology file instead of a named shape")
		samples  = flag.Int("samples", 50, "number of sample means")
		runs     = flag.Int("runs", 1000, "runs per sample")
		seed     = flag.Uint64("seed", 1, "random seed")
		bound    = flag.Float64("failure-bound", 0.05, "per-vertex failure bound for the stopping points")
		predict  = flag.Bool("predict-only", false, "print the exact prediction and exit")
	)
	flag.Parse()

	var build func(*fakeroute.AddrAllocator, packet.Addr) *topo.Graph
	if *topoFile != "" {
		f, err := os.Open(*topoFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		loaded, err := traceio.ParseTopology(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		build = func(_ *fakeroute.AddrAllocator, dst packet.Addr) *topo.Graph {
			last := loaded.Hop(loaded.NumHops() - 1)
			if len(last) == 1 && loaded.V(last[0]).Addr == dst {
				return loaded
			}
			end := loaded.AddVertex(loaded.NumHops(), dst)
			for _, u := range loaded.Hop(loaded.NumHops() - 2) {
				loaded.AddEdge(u, end)
			}
			return loaded
		}
	} else {
		var ok bool
		build, ok = shapes[*shape]
		if !ok {
			var names []string
			for n := range shapes {
				names = append(names, n)
			}
			sort.Strings(names)
			fmt.Fprintf(os.Stderr, "unknown shape %q; available: %v\n", *shape, names)
			os.Exit(2)
		}
	}
	stop := mda.StoppingPoints(*bound, 64)

	if *predict {
		src := packet.MustParseAddr("192.0.2.1")
		dst := packet.MustParseAddr("198.51.100.77")
		_, path := fakeroute.BuildScenario(*seed, src, dst, build)
		fmt.Printf("topology %s (%s): predicted MDA failure probability %.6f\n",
			*shape, fakeroute.DescribeGraph(path.Graph), fakeroute.GraphFailureProb(path.Graph, stop))
		return
	}

	res := experiments.Sec3Validation(experiments.Sec3Config{
		Samples: *samples, RunsPerSample: *runs, Seed: *seed,
		Build: build, Stop: stop,
	})
	fmt.Print(experiments.FormatSec3(res))
}
