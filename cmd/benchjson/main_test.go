package main

import (
	"reflect"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: mmlpt
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSurveySerial 	       1	  72867588 ns/op	      2745 pairs/s
BenchmarkSurveyParallel-8 	       2	  20114452 ns/op	     12632 B/op	     220 allocs/op
PASS
ok  	mmlpt	0.081s
pkg: mmlpt/internal/packet
BenchmarkSerializeProbe 	       1	       312 ns/op
ok  	mmlpt/internal/packet	0.002s
`

func TestParseBenchOutput(t *testing.T) {
	got, err := Parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	want := []Result{
		{Pkg: "mmlpt", Name: "BenchmarkSurveySerial", Iterations: 1,
			NsPerOp: 72867588, Extra: map[string]float64{"pairs/s": 2745}},
		{Pkg: "mmlpt", Name: "BenchmarkSurveyParallel-8", Iterations: 2,
			NsPerOp: 20114452, BytesPerOp: 12632, AllocsPerOp: 220},
		{Pkg: "mmlpt/internal/packet", Name: "BenchmarkSerializeProbe", Iterations: 1,
			NsPerOp: 312},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Parse:\n got %+v\nwant %+v", got, want)
	}
}

func TestParseSkipsNonBenchLines(t *testing.T) {
	got, err := Parse(strings.NewReader("PASS\nok mmlpt 0.1s\n?   mmlpt/cmd [no test files]\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("Parse found %d results in non-bench output", len(got))
	}
}

func TestParseRejectsCorruptValues(t *testing.T) {
	if _, err := Parse(strings.NewReader("BenchmarkX 1 oops ns/op\n")); err == nil {
		t.Fatal("corrupt value must error")
	}
}
