package main

import (
	"os"
	"reflect"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: mmlpt
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSurveySerial 	       1	  72867588 ns/op	      2745 pairs/s
BenchmarkSurveyParallel-8 	       2	  20114452 ns/op	     12632 B/op	     220 allocs/op
PASS
ok  	mmlpt	0.081s
pkg: mmlpt/internal/packet
BenchmarkSerializeProbe 	       1	       312 ns/op
ok  	mmlpt/internal/packet	0.002s
`

func TestParseBenchOutput(t *testing.T) {
	got, err := Parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	want := []Result{
		{Pkg: "mmlpt", Name: "BenchmarkSurveySerial", Iterations: 1,
			NsPerOp: 72867588, Extra: map[string]float64{"pairs/s": 2745}},
		{Pkg: "mmlpt", Name: "BenchmarkSurveyParallel-8", Iterations: 2,
			NsPerOp: 20114452, BytesPerOp: 12632, AllocsPerOp: 220},
		{Pkg: "mmlpt/internal/packet", Name: "BenchmarkSerializeProbe", Iterations: 1,
			NsPerOp: 312},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Parse:\n got %+v\nwant %+v", got, want)
	}
}

func TestParseSkipsNonBenchLines(t *testing.T) {
	got, err := Parse(strings.NewReader("PASS\nok mmlpt 0.1s\n?   mmlpt/cmd [no test files]\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("Parse found %d results in non-bench output", len(got))
	}
}

func TestParseRejectsCorruptValues(t *testing.T) {
	if _, err := Parse(strings.NewReader("BenchmarkX 1 oops ns/op\n")); err == nil {
		t.Fatal("corrupt value must error")
	}
}

func TestParseBenchmemColumns(t *testing.T) {
	got, err := Parse(strings.NewReader(
		"pkg: mmlpt/internal/fakeroute\nBenchmarkProbeRoundTrip/memoized-8 \t 100000 \t 231.8 ns/op \t 0 B/op \t 0 allocs/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("parsed %d results, want 1", len(got))
	}
	r := got[0]
	if r.NsPerOp != 231.8 || r.BytesPerOp != 0 || r.AllocsPerOp != 0 || r.Extra != nil {
		t.Fatalf("benchmem columns misparsed: %+v", r)
	}
}

func TestBenchKeyStripsGOMAXPROCS(t *testing.T) {
	a := Result{Pkg: "p", Name: "BenchmarkX-8"}
	b := Result{Pkg: "p", Name: "BenchmarkX-16"}
	c := Result{Pkg: "p", Name: "BenchmarkX"}
	if benchKey(a) != benchKey(b) || benchKey(a) != benchKey(c) {
		t.Fatalf("keys differ: %q %q %q", benchKey(a), benchKey(b), benchKey(c))
	}
	// A trailing sub-benchmark name is not a core-count suffix.
	d := Result{Pkg: "p", Name: "BenchmarkX/sub-case"}
	if benchKey(d) == benchKey(a) {
		t.Fatal("sub-benchmark name collapsed into parent key")
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := []Result{
		{Pkg: "p", Name: "BenchmarkFast-8", NsPerOp: 100, AllocsPerOp: 10},
		{Pkg: "p", Name: "BenchmarkZero-8", NsPerOp: 100, AllocsPerOp: 0},
		{Pkg: "p", Name: "BenchmarkGone-8", NsPerOp: 5},
	}
	head := []Result{
		{Pkg: "p", Name: "BenchmarkFast-16", NsPerOp: 120, AllocsPerOp: 10}, // +20% ns/op
		{Pkg: "p", Name: "BenchmarkZero-16", NsPerOp: 90, AllocsPerOp: 1},   // 0 -> 1 alloc
		{Pkg: "p", Name: "BenchmarkNew-16", NsPerOp: 1},
	}
	regs, missing, notes := Compare(base, head, 0.15)
	if len(regs) != 2 {
		t.Fatalf("regressions %v, want ns/op on Fast and allocs/op on Zero", regs)
	}
	if regs[0].Key != "p.BenchmarkFast-16" || regs[0].Metric != "ns/op" {
		t.Fatalf("first regression %+v", regs[0])
	}
	if regs[1].Key != "p.BenchmarkZero-16" || regs[1].Metric != "allocs/op" {
		t.Fatalf("second regression %+v", regs[1])
	}
	if len(missing) != 1 || missing[0] != "p.BenchmarkGone-8" {
		t.Fatalf("missing %v, want the disappeared baseline benchmark", missing)
	}
	if !strings.Contains(strings.Join(notes, "\n"), "BenchmarkNew") {
		t.Fatalf("notes missing added benchmark: %v", notes)
	}
}

func TestCompareExactNameBeatsSuffixStripping(t *testing.T) {
	// A sub-benchmark whose own name ends in "-<number>" (emitted
	// unsuffixed under GOMAXPROCS=1) must match its identically-named
	// baseline entry verbatim, not be truncated into a sibling.
	base := []Result{
		{Pkg: "p", Name: "BenchmarkX/pairs-100", NsPerOp: 50},
		{Pkg: "p", Name: "BenchmarkX/pairs-200", NsPerOp: 100},
	}
	head := []Result{
		{Pkg: "p", Name: "BenchmarkX/pairs-100", NsPerOp: 50},
		{Pkg: "p", Name: "BenchmarkX/pairs-200", NsPerOp: 200}, // +100% vs its own baseline
	}
	regs, _, notes := Compare(base, head, 0.15)
	if len(regs) != 1 || regs[0].Old != 100 || regs[0].New != 200 {
		t.Fatalf("regressions %v notes %v, want exactly pairs-200 ns/op 100->200", regs, notes)
	}
}

func TestCompareSuffixedHeadFindsUnsuffixedBaseline(t *testing.T) {
	// Baseline recorded under GOMAXPROCS=1 (no -N suffix) on a
	// numeric-parameter sub-benchmark; a multi-core head run still finds
	// it, because the fallback index lists entries under both keys.
	base := []Result{{Pkg: "p", Name: "BenchmarkX/pairs-100", NsPerOp: 50}}
	head := []Result{{Pkg: "p", Name: "BenchmarkX/pairs-100-8", NsPerOp: 500}}
	regs, _, notes := Compare(base, head, 0.15)
	if len(regs) != 1 || regs[0].Old != 50 || regs[0].New != 500 {
		t.Fatalf("regressions %v notes %v, want ns/op 50->500", regs, notes)
	}
}

func TestCompareAmbiguousFallbackSkipped(t *testing.T) {
	// The head's stripped key matches two distinct baseline entries; it
	// is skipped with a note instead of compared against an arbitrary
	// one.
	base := []Result{
		{Pkg: "p", Name: "BenchmarkX/pairs-100", NsPerOp: 50},
		{Pkg: "p", Name: "BenchmarkX/pairs", NsPerOp: 10},
	}
	head := []Result{{Pkg: "p", Name: "BenchmarkX/pairs-4", NsPerOp: 500}}
	regs, missing, notes := Compare(base, head, 0.15)
	if len(regs) != 0 {
		t.Fatalf("ambiguous match produced regressions: %v", regs)
	}
	if !strings.Contains(strings.Join(notes, "\n"), "ambiguous") {
		t.Fatalf("missing ambiguity note: %v", notes)
	}
	if len(missing) != 0 {
		t.Fatalf("ambiguous candidates double-reported as missing: %v", missing)
	}
}

func TestRegressionStringZeroBaseline(t *testing.T) {
	s := Regression{Key: "p.B", Metric: "allocs/op", Old: 0, New: 3}.String()
	if strings.Contains(s, "Inf") || !strings.Contains(s, "was zero") {
		t.Fatalf("zero-baseline regression renders %q", s)
	}
}

func TestCompareWithinBoundPasses(t *testing.T) {
	base := []Result{{Pkg: "p", Name: "BenchmarkX", NsPerOp: 100, AllocsPerOp: 10}}
	head := []Result{{Pkg: "p", Name: "BenchmarkX", NsPerOp: 114, AllocsPerOp: 11}}
	if regs, _, _ := Compare(base, head, 0.15); len(regs) != 0 {
		t.Fatalf("within-bound drift flagged: %v", regs)
	}
}

func TestRunCompareStrictMissing(t *testing.T) {
	dir := t.TempDir()
	write := func(name, data string) string {
		p := dir + "/" + name
		if err := os.WriteFile(p, []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	base := write("base.json", `[
		{"pkg":"p","name":"BenchmarkKept","iterations":1,"ns_per_op":100},
		{"pkg":"p","name":"BenchmarkGone","iterations":1,"ns_per_op":100}
	]`)
	headMissing := write("head.json", `[
		{"pkg":"p","name":"BenchmarkKept","iterations":1,"ns_per_op":1000}
	]`)
	headFull := write("full.json", `[
		{"pkg":"p","name":"BenchmarkKept","iterations":1,"ns_per_op":100},
		{"pkg":"p","name":"BenchmarkGone","iterations":1,"ns_per_op":100}
	]`)

	// Missing takes precedence over the (huge) ns/op regression: the gate
	// fires with its own exit code even when regressions are advisory.
	if code := runCompare([]string{base, headMissing, "-strict-missing", "-max-regress", "10000%"}); code != 3 {
		t.Fatalf("strict-missing exit code %d, want 3", code)
	}
	// Without the flag the deletion stays informational.
	if code := runCompare([]string{base, headMissing, "-max-regress", "10000%"}); code != 0 {
		t.Fatalf("non-strict exit code %d, want 0", code)
	}
	// A full head run passes strict mode.
	if code := runCompare([]string{base, headFull, "-strict-missing"}); code != 0 {
		t.Fatalf("strict with nothing missing: exit code %d, want 0", code)
	}
}

func TestParseMaxRegress(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want float64
		err  bool
	}{
		{"15%", 0.15, false},
		{"150%", 1.5, false},
		{"0.15", 0.15, false},
		{"0", 0, false},
		{"-5%", 0, true},
		{"15", 0, true}, // a forgotten % must not become 1500%
		{"NaN", 0, true},
		{"+Inf", 0, true},
		{"x", 0, true},
	} {
		got, err := parseMaxRegress(tc.in)
		if (err != nil) != tc.err || (!tc.err && got != tc.want) {
			t.Fatalf("parseMaxRegress(%q) = %v, %v; want %v err=%v", tc.in, got, err, tc.want, tc.err)
		}
	}
}
