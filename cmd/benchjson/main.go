// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON array, so CI can archive the performance
// trajectory as structured data instead of raw logs, and compares two
// such archives for regressions.
//
// Usage:
//
//	go test -bench=. -benchtime=1x -benchmem ./... | tee bench.txt
//	benchjson -in bench.txt -out bench.json
//	benchjson -compare old.json new.json -max-regress 15%
//
// Unknown lines (goos/goarch/cpu, PASS, ok) are skipped; `pkg:` lines
// attribute subsequent benchmarks to their package. ns/op, B/op and
// allocs/op land in dedicated fields; custom metrics (e.g. pairs/s) in
// "extra".
//
// Compare mode matches benchmarks by (pkg, name) — the GOMAXPROCS "-N"
// suffix is stripped so runs from machines with different core counts
// still line up — and exits nonzero if any benchmark's ns/op or
// allocs/op grew by more than -max-regress (default 15%; accepts "15%"
// or "0.15"). Benchmarks present on only one side are reported but by
// default never fail the comparison; with -strict-missing, a benchmark
// present in the baseline but absent from the new run is a hard error
// with its own exit code (3), so CI can fail on silently-deleted
// benchmarks while treating noisy regressions as advisory.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	Pkg         string             `json:"pkg,omitempty"`
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Parse extracts every benchmark line from `go test -bench` output.
func Parse(r io.Reader) ([]Result, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []Result
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "pkg:") {
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// A benchmark line is: name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || (len(fields)%2) != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Pkg: pkg, Name: fields[0], Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: %q: bad value %q", fields[0], fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = val
			case "B/op":
				res.BytesPerOp = val
			case "allocs/op":
				res.AllocsPerOp = val
			default:
				if res.Extra == nil {
					res.Extra = make(map[string]float64)
				}
				res.Extra[unit] = val
			}
		}
		out = append(out, res)
	}
	return out, sc.Err()
}

// exactKey is the verbatim benchmark identity.
func exactKey(r Result) string { return r.Pkg + "." + r.Name }

// benchKey is the fuzzy comparison identity: package plus name with a
// trailing "-<number>" suffix stripped, so a GOMAXPROCS-suffixed run
// ("BenchmarkX-8") lines up with a baseline from a machine with a
// different core count. It is only consulted when exact names do not
// match, so a sub-benchmark whose own name ends in "-<number>" (which a
// GOMAXPROCS=1 run emits unsuffixed) is never truncated when both sides
// agree on the name.
func benchKey(r Result) string {
	name := r.Name
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	return r.Pkg + "." + name
}

// Regression describes one metric that grew beyond the allowed bound.
type Regression struct {
	Key      string
	Metric   string
	Old, New float64
}

func (r Regression) String() string {
	if r.Old == 0 {
		return fmt.Sprintf("REGRESS %s %s: %.6g -> %.6g (was zero)",
			r.Key, r.Metric, r.Old, r.New)
	}
	return fmt.Sprintf("REGRESS %s %s: %.6g -> %.6g (%+.1f%%)",
		r.Key, r.Metric, r.Old, r.New, 100*(r.New-r.Old)/r.Old)
}

// Compare reports the regressions of new vs old: benchmarks whose ns/op
// or allocs/op grew by more than maxRegress (a fraction: 0.15 = 15%).
// A metric that is zero in old regresses if it is nonzero in new. The
// second return value lists the baseline benchmarks absent from head
// (hard errors under -strict-missing); the third lists informational
// lines (improvements, added benchmarks, ambiguous matches) for human
// consumption.
//
// Benchmarks match by exact (pkg, name) first; an entry with no exact
// partner falls back to its GOMAXPROCS-suffix-stripped key (see
// benchKey). A fallback key shared by several baseline entries is
// ambiguous and reported as a note rather than compared.
func Compare(base, head []Result, maxRegress float64) (regressions []Regression, missing, notes []string) {
	oldExact := make(map[string]Result, len(base))
	// The fallback index lists every baseline entry under both its exact
	// and its stripped key, so a suffixed head entry finds an unsuffixed
	// baseline (GOMAXPROCS=1 recording) and vice versa.
	oldFuzzy := make(map[string][]Result, len(base))
	for _, r := range base {
		oldExact[exactKey(r)] = r
		oldFuzzy[exactKey(r)] = append(oldFuzzy[exactKey(r)], r)
		if k := benchKey(r); k != exactKey(r) {
			oldFuzzy[k] = append(oldFuzzy[k], r)
		}
	}
	matched := make(map[string]bool, len(base)) // by exactKey of the baseline entry
	for _, n := range head {
		key := exactKey(n)
		o, ok := oldExact[key]
		if !ok {
			switch cands := oldFuzzy[benchKey(n)]; len(cands) {
			case 1:
				o, ok = cands[0], true
			case 0:
			default:
				notes = append(notes, fmt.Sprintf("ambiguous baseline for %s (%d candidates), skipped", key, len(cands)))
				// The candidates were seen, just not comparable; don't
				// also report them as disappeared.
				for _, c := range cands {
					matched[exactKey(c)] = true
				}
				continue
			}
		}
		if !ok {
			notes = append(notes, fmt.Sprintf("new benchmark %s (no baseline)", key))
			continue
		}
		matched[exactKey(o)] = true
		for _, m := range []struct {
			metric   string
			old, new float64
		}{
			{"ns/op", o.NsPerOp, n.NsPerOp},
			{"allocs/op", o.AllocsPerOp, n.AllocsPerOp},
		} {
			switch {
			case m.new > m.old*(1+maxRegress):
				regressions = append(regressions, Regression{Key: key, Metric: m.metric, Old: m.old, New: m.new})
			case m.old > 0 && m.new < m.old*(1-maxRegress):
				notes = append(notes, fmt.Sprintf("improved %s %s: %.6g -> %.6g (%+.1f%%)",
					key, m.metric, m.old, m.new, 100*(m.new-m.old)/m.old))
			}
		}
	}
	for _, r := range base {
		if !matched[exactKey(r)] {
			missing = append(missing, exactKey(r))
		}
	}
	sort.Slice(regressions, func(i, j int) bool {
		if regressions[i].Key != regressions[j].Key {
			return regressions[i].Key < regressions[j].Key
		}
		return regressions[i].Metric < regressions[j].Metric
	})
	sort.Strings(missing)
	sort.Strings(notes)
	return regressions, missing, notes
}

// parseMaxRegress accepts "15%" or a bare fraction like "0.15".
func parseMaxRegress(s string) (float64, error) {
	pct := strings.HasSuffix(s, "%")
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil || v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		// NaN would make every threshold comparison false and silently
		// disable the gate; reject it like any other bad input.
		return 0, fmt.Errorf("benchjson: bad -max-regress %q", s)
	}
	if !pct && v > 1 {
		return 0, fmt.Errorf("benchjson: -max-regress %q > 1; write a percentage as %q", s, s+"%")
	}
	if pct {
		v /= 100
	}
	return v, nil
}

func loadResults(path string) ([]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []Result
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("benchjson: %s: %v", path, err)
	}
	return out, nil
}

// runCompare implements `benchjson -compare old.json new.json
// [-max-regress 15%] [-strict-missing]`, returning the process exit
// code: 0 clean, 1 regressions, 2 usage, 3 baseline benchmarks missing
// from the new run under -strict-missing (missing takes precedence over
// regressions, so CI can gate on deletions alone). Flags may appear
// before or after the two positional paths.
func runCompare(args []string) int {
	maxRegress := 0.15
	strictMissing := false
	var paths []string
	for i := 0; i < len(args); i++ {
		switch {
		case args[i] == "-strict-missing" || args[i] == "--strict-missing":
			strictMissing = true
		case args[i] == "-max-regress" || args[i] == "--max-regress":
			if i+1 >= len(args) {
				fmt.Fprintln(os.Stderr, "benchjson: -max-regress needs a value")
				return 2
			}
			i++
			v, err := parseMaxRegress(args[i])
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
			maxRegress = v
		case strings.HasPrefix(args[i], "-"):
			fmt.Fprintf(os.Stderr, "benchjson: unknown compare flag %s\n", args[i])
			return 2
		default:
			paths = append(paths, args[i])
		}
	}
	if len(paths) != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchjson -compare old.json new.json [-max-regress 15%] [-strict-missing]")
		return 2
	}
	base, err := loadResults(paths[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	head, err := loadResults(paths[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	regressions, missing, notes := Compare(base, head, maxRegress)
	for _, n := range notes {
		fmt.Println(n)
	}
	for _, m := range missing {
		if strictMissing {
			fmt.Printf("MISSING %s: in baseline, absent from new run\n", m)
		} else {
			fmt.Printf("benchmark %s disappeared (was in baseline)\n", m)
		}
	}
	for _, r := range regressions {
		fmt.Println(r)
	}
	if strictMissing && len(missing) > 0 {
		fmt.Printf("%d benchmark(s) missing from the new run (strict-missing)\n", len(missing))
		return 3
	}
	if len(regressions) > 0 {
		fmt.Printf("%d regression(s) beyond %.0f%%\n", len(regressions), maxRegress*100)
		return 1
	}
	fmt.Printf("no regressions beyond %.0f%% (%d benchmarks compared)\n", maxRegress*100, len(head))
	return 0
}

func main() {
	if len(os.Args) > 1 && (os.Args[1] == "-compare" || os.Args[1] == "--compare") {
		os.Exit(runCompare(os.Args[2:]))
	}
	var (
		in  = flag.String("in", "", "bench text input (default stdin)")
		out = flag.String("out", "", "JSON output (default stdout)")
	)
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	results, err := Parse(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: warning: no benchmark lines found")
	}
}
