// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON array, so CI can archive the performance
// trajectory as structured data instead of raw logs.
//
// Usage:
//
//	go test -bench=. -benchtime=1x ./... | tee bench.txt
//	benchjson -in bench.txt -out bench.json
//
// Unknown lines (goos/goarch/cpu, PASS, ok) are skipped; `pkg:` lines
// attribute subsequent benchmarks to their package. Custom metrics
// (e.g. pairs/s) land in "extra".
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	Pkg         string             `json:"pkg,omitempty"`
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Parse extracts every benchmark line from `go test -bench` output.
func Parse(r io.Reader) ([]Result, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []Result
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "pkg:") {
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// A benchmark line is: name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || (len(fields)%2) != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Pkg: pkg, Name: fields[0], Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: %q: bad value %q", fields[0], fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = val
			case "B/op":
				res.BytesPerOp = val
			case "allocs/op":
				res.AllocsPerOp = val
			default:
				if res.Extra == nil {
					res.Extra = make(map[string]float64)
				}
				res.Extra[unit] = val
			}
		}
		out = append(out, res)
	}
	return out, sc.Err()
}

func main() {
	var (
		in  = flag.String("in", "", "bench text input (default stdin)")
		out = flag.String("out", "", "JSON output (default stdout)")
	)
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	results, err := Parse(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: warning: no benchmark lines found")
	}
}
