//go:build linux

package main

import (
	"fmt"
	"strings"

	"mmlpt/internal/mda"
	"mmlpt/internal/mdalite"
	"mmlpt/internal/packet"
	"mmlpt/internal/probe"
)

// runLive traces each destination with the MDA-Lite over the batched
// raw-socket wire path and prints a per-destination summary plus
// whole-run totals, including the probes-per-syscall ratio the batching
// exists to maximize.
func runLive(o liveOptions) error {
	src, err := packet.ParseAddr(o.Src)
	if err != nil {
		return fmt.Errorf("-live-src: %w", err)
	}
	var dests []packet.Addr
	for _, s := range strings.Split(o.Dests, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		d, err := packet.ParseAddr(s)
		if err != nil {
			return fmt.Errorf("-live-dests: %w", err)
		}
		dests = append(dests, d)
	}
	if len(dests) == 0 {
		return fmt.Errorf("-live-dests: no destinations")
	}

	var totalProbes, totalSyscalls uint64
	reached := 0
	for i, dst := range dests {
		p, err := probe.NewLiveProberConfig(src, dst, probe.LiveConfig{
			Timeout: o.Timeout, Retries: o.Retries, MaxBatch: o.Batch,
		})
		if err != nil {
			return err
		}
		res := mdalite.Trace(p, mda.Config{Seed: o.Seed + uint64(i)}, o.Phi)
		syscalls := p.Syscalls()
		p.Close()

		status := "unreached"
		if res.ReachedDst {
			status = fmt.Sprintf("reached at hop %d", res.DstHop)
			reached++
		}
		perSyscall := float64(res.Probes) / float64(syscalls)
		fmt.Printf("%s: %s, %d hops, %d probes, %d syscalls (%.1f probes/syscall)\n",
			dst, status, res.Graph.NumHops(), res.Probes, syscalls, perSyscall)
		if o.Figs {
			fmt.Print(res.Graph.String())
		}
		totalProbes += res.Probes
		totalSyscalls += syscalls
	}
	fmt.Printf("live: %d/%d destinations reached, %d probes, %d syscalls (%.1f probes/syscall)\n",
		reached, len(dests), totalProbes, totalSyscalls,
		float64(totalProbes)/float64(totalSyscalls))
	return nil
}
