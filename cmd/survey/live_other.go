//go:build !linux

package main

import "errors"

// runLive rejects live mode where the raw-socket transport is not
// built: the batched wire path is Linux-only (sendmmsg/recvmmsg).
func runLive(liveOptions) error {
	return errors.New("live mode requires Linux raw sockets; run on linux with CAP_NET_RAW")
}
