// Command survey runs the paper's Sec 5 surveys over the synthetic
// Internet: the IP-level survey (diamond metrics, Figs 7-11) and the
// router-level survey (alias resolution effects, Figs 12-14 and Table 3).
//
// Results stream: with -out each pair's record is appended to a JSONL
// file the moment its trace completes, and with -checkpoint the run
// writes an atomic progress file so it can be killed at any point and
// re-run with -resume to continue where it left off, producing output
// byte-identical to an uninterrupted run.
//
// With -atlas every trace is additionally merged into a cross-trace
// topology atlas (internal/atlas) whose snapshot is written atomically
// at the end of the run; cmd/atlas and cmd/atlasd answer queries over
// such snapshots. Adding -atlas-publish-every N also publishes an
// incremental delta snapshot (<atlas>.dNNNNNN) every N records, so a
// serving process can advance mid-run via `atlas compact` + SIGHUP.
//
// Usage:
//
//	survey -level ip -pairs 2000 -out results.jsonl -progress
//	survey -level router -pairs 500 -rounds 10
//	survey -level router -pairs 500 -atlas internet.atlas
//	survey -level ip -pairs 100000 -out r.jsonl -checkpoint r.ckpt
//	survey -level ip -pairs 100000 -out r.jsonl -checkpoint r.ckpt -resume
//
// With -live-dests the surveys above are bypassed and each listed
// destination is traced for real over Linux raw sockets (CAP_NET_RAW
// required), using the batched sendmmsg/recvmmsg wire path:
//
//	survey -live-src 192.0.2.10 -live-dests 198.51.100.1,198.51.100.2
//
// With -join the process becomes a fleet runner instead: it claims
// leased work units from a cmd/surveyd coordinator, traces each unit's
// span of the survey, and ships the records back. The survey plan comes
// from the coordinator, so only concurrency flags apply locally:
//
//	survey -join http://coordinator:8460 -runner-id runner-1
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"mmlpt/internal/atlas"
	"mmlpt/internal/atlas/serve"
	"mmlpt/internal/dispatch"
	"mmlpt/internal/experiments"
	"mmlpt/internal/obs"
	"mmlpt/internal/prior"
	"mmlpt/internal/survey"
	"mmlpt/internal/traceio"
)

func main() {
	var (
		level        = flag.String("level", "ip", "survey level: ip or router")
		pairs        = flag.Int("pairs", 1000, "number of source-destination pairs")
		seed         = flag.Uint64("seed", 1, "random seed")
		phi          = flag.Int("phi", 2, "MDA-Lite meshing budget")
		rounds       = flag.Int("rounds", 10, "alias rounds (router level)")
		workers      = flag.Int("workers", 0, "concurrent trace workers (0 = GOMAXPROCS, 1 = serial; results are identical)")
		figs         = flag.Bool("figs", false, "also print full figure series")
		out          = flag.String("out", "", "stream per-trace survey records to this JSONL file as pairs complete")
		jsonl        = flag.String("jsonl", "", "deprecated alias for -out")
		atlasOut     = flag.String("atlas", "", "merge every trace into a cross-trace atlas and write its snapshot to this file")
		atlasShards  = flag.Int("atlas-shards", 0, "atlas ingestion shards (0 = default; snapshot bytes are identical for every value)")
		atlasWorkers = flag.Int("atlas-workers", 0, "atlas merge workers for snapshot writes (0 = GOMAXPROCS, 1 = serial; snapshot bytes are identical for every value)")
		atlasEvery   = flag.Int("atlas-publish-every", 0, "with -atlas: also publish an incremental delta snapshot (<atlas>.dNNNNNN) every N records, for live serving via atlas compact + atlasd")
		priorPath    = flag.String("prior", "", "seed traces from this atlas snapshot: pairs the atlas has seen probe only to their confirmation budget (ip level, switches the tracer to MDA-Lite)")
		ckpt         = flag.String("checkpoint", "", "write an atomic progress checkpoint to this file")
		every        = flag.Int("checkpoint-every", survey.DefaultCheckpointEvery, "records between checkpoints")
		resume       = flag.Bool("resume", false, "resume from the checkpoint, skipping completed pairs")
		prog         = flag.Bool("progress", false, "report pair/probe rates to stderr while running")
		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
		memProfile   = flag.String("memprofile", "", "write a heap profile to this file at exit")

		join     = flag.String("join", "", "coordinator URL: run as a fleet runner, claiming work units from a surveyd instead of running a survey locally")
		runnerID = flag.String("runner-id", "", "runner name in leases and fleet status (with -join; default host:pid)")
		maxUnits = flag.Int("max-units", 0, "with -join: exit after shipping this many units (0 = until the survey is done)")

		liveDests   = flag.String("live-dests", "", "comma-separated destination IPs: trace live over raw sockets (Linux, CAP_NET_RAW) instead of the simulator")
		liveSrc     = flag.String("live-src", "", "source IP stamped into live probes (required with -live-dests)")
		liveBatch   = flag.Int("live-batch", 64, "live mode: max packets per sendmmsg/recvmmsg call")
		liveTimeout = flag.Duration("live-timeout", 2*time.Second, "live mode: per-wave reply timeout")
		liveRetries = flag.Int("live-retries", 2, "live mode: re-sends per unanswered probe")
	)
	flag.Parse()

	if *join != "" {
		// Fleet-runner mode: the survey plan (level, pairs, seed, ...)
		// comes from the coordinator's Spec, not from local flags.
		id := *runnerID
		if id == "" {
			host, _ := os.Hostname()
			if host == "" {
				host = "runner"
			}
			id = fmt.Sprintf("%s:%d", host, os.Getpid())
		}
		err := dispatch.RunRunner(dispatch.RunnerConfig{
			Coordinator: *join,
			ID:          id,
			Workers:     *workers,
			MaxUnits:    *maxUnits,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *liveDests != "" {
		if *liveSrc == "" {
			fmt.Fprintln(os.Stderr, "-live-dests requires -live-src")
			os.Exit(2)
		}
		err := runLive(liveOptions{
			Src: *liveSrc, Dests: *liveDests,
			Phi: *phi, Seed: *seed,
			Batch: *liveBatch, Timeout: *liveTimeout, Retries: *liveRetries,
			Figs: *figs,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	// Usage validation happens before profiling starts, so usage-error
	// exits never leave a truncated CPU profile behind.
	outPath := *out
	if outPath == "" {
		outPath = *jsonl
	}
	if *jsonl != "" {
		fmt.Fprintln(os.Stderr, "warning: -jsonl is deprecated (use -out); the file now holds one survey record per line ({pair_index, has_lb, trace, diamonds}), not bare trace objects")
	}
	if *resume && *ckpt == "" {
		fmt.Fprintln(os.Stderr, "-resume requires -checkpoint")
		os.Exit(2)
	}
	if *resume && outPath == "" {
		// Without the record log there is nothing to replay: the summary
		// would silently cover only the resumed tail.
		fmt.Fprintln(os.Stderr, "-resume requires -out (the JSONL record log is what resume replays)")
		os.Exit(2)
	}
	switch *level {
	case "ip", "router":
	default:
		fmt.Fprintf(os.Stderr, "unknown level %q (ip or router)\n", *level)
		os.Exit(2)
	}
	if *priorPath != "" && *level != "ip" {
		fmt.Fprintln(os.Stderr, "-prior applies to the ip-level survey only")
		os.Exit(2)
	}

	// flushProfiles finalizes any active profiles. It is deferred for the
	// normal return path and called by fail() before os.Exit, so a run
	// that errors after the survey still leaves usable profiles behind.
	var cpuFile *os.File
	profilesDone := false
	flushProfiles := func() {
		if profilesDone {
			return
		}
		profilesDone = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if *memProfile != "" {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the steady-state heap before sampling
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}
	}
	defer flushProfiles()
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cpuFile = f
	}

	cfg := experiments.SurveyConfig{
		Pairs: *pairs, Seed: *seed, Phi: *phi, Rounds: *rounds, Workers: *workers,
		Checkpoint: *ckpt, CheckpointEvery: *every, Resume: *resume,
	}
	if *priorPath != "" {
		svc, err := serve.Open(*priorPath, serve.Options{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "opening prior snapshot: %v\n", err)
			os.Exit(1)
		}
		ix, err := prior.FromService(svc)
		svc.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "indexing prior snapshot: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "prior: %d pairs indexed from %s\n", ix.Len(), *priorPath)
		cfg.Prior = ix
	}
	var jsonlSink *survey.JSONLSink
	var agg *survey.AggregateSink
	if outPath != "" {
		jsonlSink = survey.NewJSONLSink(outPath)
		agg = survey.NewAggregateSink()
		cfg.Sinks = []survey.Sink{jsonlSink, agg}
	}
	var atlasSink *survey.AtlasSink
	if *atlasOut != "" {
		atlasSink = survey.NewAtlasSink(atlas.Options{Shards: *atlasShards, MergeWorkers: *atlasWorkers})
		if *atlasEvery > 0 {
			atlasSink.PublishDeltas(*atlasOut, *atlasEvery)
		}
		cfg.Sinks = append(cfg.Sinks, atlasSink)
	} else if *atlasEvery > 0 {
		fmt.Fprintln(os.Stderr, "-atlas-publish-every requires -atlas")
		os.Exit(2)
	}

	var stopProgress chan struct{}
	if *prog {
		cfg.Progress = obs.NewProgress()
		stopProgress = make(chan struct{})
		go func() {
			t := time.NewTicker(2 * time.Second)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					fmt.Fprintln(os.Stderr, cfg.Progress.Snapshot())
				case <-stopProgress:
					return
				}
			}
		}()
	}

	fail := func(err error) {
		if err == nil {
			return
		}
		fmt.Fprintln(os.Stderr, err)
		flushProfiles() // os.Exit skips defers; keep partial-run profiles usable
		os.Exit(1)
	}
	finish := func(res *survey.Result) {
		if stopProgress != nil {
			close(stopProgress)
			fmt.Fprintln(os.Stderr, cfg.Progress.Snapshot())
		}
		if jsonlSink != nil {
			fail(jsonlSink.Close())
			fmt.Printf("wrote %d trace records to %s (%d bytes)\n",
				agg.Agg.Records, outPath, jsonlSink.Offset())
		}
		if atlasSink != nil {
			fail(atlasSink.Close()) // flush a final partial delta, if publishing
			// Save streams the snapshot (Atlas.WriteTo): the full
			// AtlasSnapshot is never materialized, and the v2 header of
			// the file just written already carries the stat totals.
			fail(atlasSink.Atlas.Save(*atlasOut))
			r, err := traceio.OpenAtlasFile(*atlasOut)
			fail(err)
			h := r.Header()
			fail(r.Close())
			st := atlas.Stats{Pairs: h.Pairs, Nodes: h.Nodes, Edges: h.Edges, Routers: h.Routers, Diamonds: h.Diamonds}
			fmt.Printf("wrote atlas snapshot to %s (%s)\n", *atlasOut, st)
			if n := len(atlasSink.Published()); n > 0 {
				fmt.Printf("published %d atlas deltas alongside %s\n", n, *atlasOut)
			}
		}
		if *resume && agg != nil {
			// The in-memory result covers only the pairs this process
			// traced; the record aggregate, replayed from the JSONL log,
			// covers the whole survey.
			fmt.Printf("resumed: traced %d remaining pairs\n", len(res.Outcomes))
			fmt.Print(agg.Agg.Summary())
		} else {
			fmt.Print(res.Summary())
		}
	}

	switch *level {
	case "ip":
		res, err := experiments.IPSurvey(cfg)
		fail(err)
		finish(res)
		if *figs {
			if *resume {
				fmt.Fprintln(os.Stderr, "warning: -figs on a resumed run covers only the pairs traced in this process")
			}
			fmt.Println(experiments.FormatFig2(res))
			fmt.Println(experiments.FormatFig7(res))
			fmt.Println(experiments.FormatFig8(res))
			fmt.Println(experiments.FormatFig9(res))
			fmt.Println(experiments.FormatFig10(res))
			fmt.Println(experiments.FormatFig11(res))
		}
	case "router":
		res, recs, err := experiments.RouterSurvey(cfg)
		fail(err)
		finish(res)
		if *resume {
			fmt.Fprintln(os.Stderr, "warning: Table 3 on a resumed run covers only the pairs traced in this process")
		}
		fmt.Println(experiments.FormatTable3(res, recs))
		if *figs {
			if *resume {
				fmt.Fprintln(os.Stderr, "warning: -figs on a resumed run covers only the pairs traced in this process")
			}
			fmt.Println(experiments.FormatFig12(recs))
			fmt.Println(experiments.FormatFig13(res, recs))
			fmt.Println(experiments.FormatFig14(res, recs))
		}
	}
}

// liveOptions carries the -live-* flags to the platform-specific live
// runner: runLive in live_linux.go traces each destination over raw
// sockets; other platforms reject live mode (live_other.go).
type liveOptions struct {
	Src, Dests string
	Phi        int
	Seed       uint64
	Batch      int
	Retries    int
	Timeout    time.Duration
	Figs       bool
}
