// Command survey runs the paper's Sec 5 surveys over the synthetic
// Internet: the IP-level survey (diamond metrics, Figs 7-11) and the
// router-level survey (alias resolution effects, Figs 12-14 and Table 3).
//
// Usage:
//
//	survey -level ip -pairs 2000
//	survey -level router -pairs 500 -rounds 10
package main

import (
	"flag"
	"fmt"
	"os"

	"mmlpt/internal/experiments"
	"mmlpt/internal/mda"
	"mmlpt/internal/survey"
	"mmlpt/internal/traceio"
)

// dumpJSONL writes one JSON record per trace outcome to path.
func dumpJSONL(path string, res *survey.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	for _, o := range res.Outcomes {
		view := &mda.Result{
			Graph: o.Graph, ReachedDst: o.Reached,
			SwitchedToMDA: o.Switched, Probes: o.Probes, DstHop: -1,
		}
		jt := traceio.NewJSONTrace(o.Pair.Src, o.Pair.Dst, res.Algo.String(), view)
		if o.ML != nil {
			jt.AttachMultilevel(o.ML)
		}
		if err := jt.WriteJSONL(f); err != nil {
			return err
		}
	}
	return nil
}

func main() {
	var (
		level   = flag.String("level", "ip", "survey level: ip or router")
		pairs   = flag.Int("pairs", 1000, "number of source-destination pairs")
		seed    = flag.Uint64("seed", 1, "random seed")
		phi     = flag.Int("phi", 2, "MDA-Lite meshing budget")
		rounds  = flag.Int("rounds", 10, "alias rounds (router level)")
		workers = flag.Int("workers", 0, "concurrent trace workers (0 = GOMAXPROCS, 1 = serial; results are identical)")
		figs    = flag.Bool("figs", false, "also print full figure series")
		jsonl   = flag.String("jsonl", "", "write per-trace JSONL records to this file")
	)
	flag.Parse()

	switch *level {
	case "ip":
		res := experiments.IPSurvey(experiments.SurveyConfig{
			Pairs: *pairs, Seed: *seed, Phi: *phi, Workers: *workers,
		})
		fmt.Print(res.Summary())
		if *jsonl != "" {
			if err := dumpJSONL(*jsonl, res); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %d trace records to %s\n", len(res.Outcomes), *jsonl)
		}
		if *figs {
			fmt.Println(experiments.FormatFig2(res))
			fmt.Println(experiments.FormatFig7(res))
			fmt.Println(experiments.FormatFig8(res))
			fmt.Println(experiments.FormatFig9(res))
			fmt.Println(experiments.FormatFig10(res))
			fmt.Println(experiments.FormatFig11(res))
		}
	case "router":
		res, recs := experiments.RouterSurvey(experiments.SurveyConfig{
			Pairs: *pairs, Seed: *seed, Phi: *phi, Rounds: *rounds, Workers: *workers,
		})
		fmt.Print(res.Summary())
		if *jsonl != "" {
			if err := dumpJSONL(*jsonl, res); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %d trace records to %s\n", len(res.Outcomes), *jsonl)
		}
		fmt.Println(experiments.FormatTable3(res, recs))
		if *figs {
			fmt.Println(experiments.FormatFig12(recs))
			fmt.Println(experiments.FormatFig13(res, recs))
			fmt.Println(experiments.FormatFig14(res, recs))
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown level %q (ip or router)\n", *level)
		os.Exit(2)
	}
}
