// Command paperfig regenerates every table and figure of the paper's
// evaluation from the Go reproduction, printing the same rows and series
// the paper reports.
//
// Usage:
//
//	paperfig -all                 # everything at the default scale
//	paperfig -fig 4 -scale 5      # Fig 4 at 5x the default workload
//	paperfig -table 2
//
// Scale 1 is sized to finish in seconds; the paper's own scale (10,000
// measurement pairs, 50×1000 validation runs) is roughly -scale 50 for
// the measurement experiments.
package main

import (
	"flag"
	"fmt"
	"os"

	"mmlpt/internal/experiments"
	"mmlpt/internal/survey"
)

func main() {
	var (
		fig   = flag.Int("fig", 0, "figure number to regenerate (1-5, 7-14)")
		table = flag.Int("table", 0, "table number to regenerate (1-3)")
		all   = flag.Bool("all", false, "regenerate everything")
		scale = flag.Int("scale", 1, "workload multiplier")
		seed  = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()
	if !*all && *fig == 0 && *table == 0 {
		flag.Usage()
		os.Exit(2)
	}
	s := *scale
	if s < 1 {
		s = 1
	}

	var ipRes *ipSurveyCache
	ipSurvey := func() *ipSurveyCache {
		if ipRes == nil {
			res, err := experiments.IPSurvey(experiments.SurveyConfig{Pairs: 400 * s, Seed: *seed})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			ipRes = &ipSurveyCache{res}
		}
		return ipRes
	}
	var routerRes *routerSurveyCache
	routerSurvey := func() *routerSurveyCache {
		if routerRes == nil {
			res, recs, err := experiments.RouterSurvey(experiments.SurveyConfig{
				Pairs: 120 * s, Seed: *seed, Rounds: 10,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			routerRes = &routerSurveyCache{res: res, recs: recs}
		}
		return routerRes
	}

	want := func(f, t int) bool {
		return *all || (*fig != 0 && *fig == f) || (*table != 0 && *table == t)
	}

	if want(1, 0) {
		fmt.Println(experiments.FormatFig1(experiments.Fig1(experiments.Fig1Config{
			Runs: 30 * s, Seed: *seed,
		})))
	}
	if want(2, 0) {
		fmt.Println(experiments.FormatFig2(ipSurvey().res))
	}
	if want(3, 0) {
		fmt.Println(experiments.FormatFig3(experiments.Fig3(experiments.Fig3Config{
			Runs: 30, Seed: *seed,
		})))
	}
	if want(4, 1) {
		r := experiments.Fig4(experiments.Fig4Config{Pairs: 200 * s, Seed: *seed})
		fmt.Println(experiments.FormatFig4(r))
		any2, s402 := r.SavingsShare(experiments.VariantLitePhi2)
		fmt.Printf("# MDA-Lite phi=2: packet savings on %.0f%% of pairs; >=40%% savings on %.0f%% (paper: 89%% and 30%%)\n\n",
			100*any2, 100*s402)
	}
	if want(0, 0) && *all { // Sec 3 validation is part of -all
		fmt.Println(experiments.FormatSec3(experiments.Sec3Validation(experiments.Sec3Config{
			Samples: 10 * s, RunsPerSample: 200 * s, Seed: *seed,
		})))
	}
	if want(5, 0) {
		fmt.Println(experiments.FormatFig5(experiments.Fig5(experiments.Fig5Config{
			Pairs: 60 * s, Seed: *seed,
		})))
	}
	if want(0, 2) {
		fmt.Println(experiments.FormatTable2(experiments.Table2(experiments.Table2Config{
			Pairs: 40 * s, Seed: *seed,
		})))
	}
	if want(7, 0) {
		fmt.Println(experiments.FormatFig7(ipSurvey().res))
	}
	if want(8, 0) {
		fmt.Println(experiments.FormatFig8(ipSurvey().res))
	}
	if want(9, 0) {
		fmt.Println(experiments.FormatFig9(ipSurvey().res))
	}
	if want(10, 0) {
		fmt.Println(experiments.FormatFig10(ipSurvey().res))
	}
	if want(11, 0) {
		fmt.Println(experiments.FormatFig11(ipSurvey().res))
	}
	if want(12, 0) {
		fmt.Println(experiments.FormatFig12(routerSurvey().recs))
	}
	if want(0, 3) {
		fmt.Println(experiments.FormatTable3(routerSurvey().res, routerSurvey().recs))
	}
	if want(13, 0) {
		fmt.Println(experiments.FormatFig13(routerSurvey().res, routerSurvey().recs))
	}
	if want(14, 0) {
		fmt.Println(experiments.FormatFig14(routerSurvey().res, routerSurvey().recs))
	}
}

type ipSurveyCache struct{ res *survey.Result }

type routerSurveyCache struct {
	res  *survey.Result
	recs []survey.RouterRecord
}
