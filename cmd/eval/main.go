// Command eval runs the ground-truth evaluation suite: each scenario
// generates topologies with known ground truth, traces them with the
// full MDA and the MDA-Lite, and scores accuracy (vertex/edge/diamond
// recall and precision) against cost (probes sent). The run is fully
// deterministic — same seeds, same records, for every worker count.
//
// Usage:
//
//	eval                                   # run the suite, print the accuracy/cost table
//	eval -list                             # list scenarios with descriptions and LB mixes
//	eval -scenarios 'flow-*' -seeds 5      # scenario selection and seed sweep
//	eval -tracer mdalite-prior             # add the atlas-prior re-trace columns
//	eval -out eval.jsonl                   # stream byte-stable records to JSONL
//	eval -golden testdata/eval_golden.jsonl  # compare against the committed golden,
//	                                         # exit 1 on drift beyond tolerance
//
// With -tracer mdalite-prior each instance additionally runs the
// prior-seeded re-trace pipeline: an unseeded pass builds an atlas
// snapshot, priors are extracted through the serving layer, and a
// prior-seeded re-trace is scored against an unseeded re-trace baseline
// (probe savings, relative edge recall, stale-prior fallbacks).
//
// Regenerate the golden after a deliberate algorithm change with:
//
//	go run ./cmd/eval -tracer mdalite-prior -out testdata/eval_golden.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mmlpt/internal/experiments"
	"mmlpt/internal/fakeroute"
	"mmlpt/internal/groundtruth"
	"mmlpt/internal/traceio"
)

func main() {
	var (
		scenarios = flag.String("scenarios", "all", "comma-separated scenario names; a trailing * matches a prefix")
		seeds     = flag.Int("seeds", 3, "seed sweep width per scenario")
		seed      = flag.Uint64("seed", 1, "base seed")
		phi       = flag.Int("phi", 0, "MDA-Lite meshing budget (0 = default)")
		workers   = flag.Int("workers", 0, "concurrent instances (0 = GOMAXPROCS; records are identical for every value)")
		out       = flag.String("out", "", "stream eval records to this JSONL file")
		golden    = flag.String("golden", "", "compare the run against this golden JSONL, exit 1 on drift")
		tolRecall = flag.Float64("tol-recall", groundtruth.DefaultRecallTolerance, "absolute drift tolerance on recall/precision/savings metrics (0 = exact)")
		tolProbes = flag.Float64("tol-probes", groundtruth.DefaultProbesTolerance, "relative drift tolerance on probe counts, either direction (0 = exact)")
		tracer    = flag.String("tracer", "", "additional tracer column: 'mdalite-prior' scores the atlas-prior-seeded re-trace against an unseeded re-trace baseline")
		list      = flag.Bool("list", false, "list scenarios with descriptions and LB mixes, then exit")
	)
	flag.Parse()

	withPrior := false
	switch *tracer {
	case "":
	case "mdalite-prior":
		withPrior = true
	default:
		fmt.Fprintf(os.Stderr, "unknown tracer %q (supported: mdalite-prior)\n", *tracer)
		os.Exit(2)
	}

	suite := groundtruth.Suite()
	if *list {
		for _, sc := range suite {
			pairs := sc.Pairs
			if pairs == 0 {
				pairs = 2
			}
			fmt.Printf("%-16s pairs=%d lb=%-28s %s\n", sc.Name, pairs, lbMix(sc.Gen.LB), sc.Description)
		}
		return
	}
	selected, err := groundtruth.Select(suite, *scenarios)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cfg := groundtruth.Config{
		Scenarios: selected,
		Seeds:     *seeds,
		BaseSeed:  *seed,
		Phi:       *phi,
		Workers:   *workers,
		WithPrior: withPrior,
	}
	var jw *traceio.JSONLWriter
	if *out != "" {
		jw, err = traceio.CreateJSONL(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cfg.OnRecord = func(rec *traceio.EvalRecord) error { return jw.Write(rec) }
	}

	records, err := groundtruth.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if jw != nil {
		if err := jw.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d eval records to %s (%d bytes)\n", len(records), *out, jw.Offset())
	}

	fmt.Print(experiments.FormatAccuracyCostTable(experiments.AccuracyCostTable(records)))
	if withPrior {
		fmt.Print(experiments.FormatPriorRetraceTable(experiments.PriorRetraceTable(records)))
	}

	if *golden != "" {
		goldenRecs, err := groundtruth.LoadGolden(*golden, selected)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tol := groundtruth.Tolerances{Recall: *tolRecall, Probes: *tolProbes}
		drifts := groundtruth.CompareGolden(records, goldenRecs, tol)
		if len(drifts) > 0 {
			fmt.Fprintf(os.Stderr, "golden compare FAILED against %s: %d drift(s)\n", *golden, len(drifts))
			for _, d := range drifts {
				fmt.Fprintln(os.Stderr, d)
			}
			fmt.Fprintln(os.Stderr, "if this change is deliberate, regenerate with: go run ./cmd/eval -out", *golden)
			os.Exit(1)
		}
		fmt.Printf("golden compare OK against %s (%d records, tol recall %.3g / probes %.3g)\n",
			*golden, len(goldenRecs), tol.Recall, tol.Probes)
	}
}

// lbMix renders a scenario's load-balancer mode mix for -list.
func lbMix(m fakeroute.LBMix) string {
	perFlow := 1 - m.PerPacket - m.PerDestination
	if m.PerPacket == 0 && m.PerDestination == 0 {
		return "per-flow"
	}
	var parts []string
	if perFlow > 0 {
		parts = append(parts, fmt.Sprintf("per-flow %.0f%%", 100*perFlow))
	}
	if m.PerDestination > 0 {
		parts = append(parts, fmt.Sprintf("per-dest %.0f%%", 100*m.PerDestination))
	}
	if m.PerPacket > 0 {
		parts = append(parts, fmt.Sprintf("per-packet %.0f%%", 100*m.PerPacket))
	}
	return strings.Join(parts, "+")
}
