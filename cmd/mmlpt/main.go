// Command mmlpt is the Multilevel MDA-Lite Paris Traceroute tool, run
// against a Fakeroute-simulated topology.
//
// Usage:
//
//	mmlpt -shape meshed48 -algo multilevel -phi 2
//	mmlpt -shape asymmetric -algo mda-lite -seed 7
//
// It prints the IP-level multipath topology hop by hop, the diamonds with
// their survey metrics and, for the multilevel algorithm, the resolved
// alias sets and the router-level topology.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"mmlpt"
	"mmlpt/internal/alias"
	"mmlpt/internal/fakeroute"
	"mmlpt/internal/packet"
	"mmlpt/internal/topo"
	"mmlpt/internal/traceio"
)

var shapes = map[string]func(*fakeroute.AddrAllocator, packet.Addr) *topo.Graph{
	"simplest":   fakeroute.SimplestDiamond,
	"fig1":       fakeroute.Fig1UnmeshedDiamond,
	"fig1meshed": fakeroute.Fig1MeshedDiamond,
	"maxlen2":    fakeroute.MaxLength2Diamond,
	"symmetric":  fakeroute.SymmetricDiamond,
	"asymmetric": fakeroute.AsymmetricDiamond,
	"meshed48":   fakeroute.MeshedDiamond48,
}

func shapeNames() []string {
	var names []string
	for n := range shapes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func main() {
	var (
		shape    = flag.String("shape", "fig1", fmt.Sprintf("simulated topology %v", shapeNames()))
		topoFile = flag.String("topology", "", "trace a topology file instead of a named shape")
		algo     = flag.String("algo", "mda-lite", "algorithm: single, mda, mda-lite, multilevel")
		phi      = flag.Int("phi", 2, "MDA-Lite meshing-test budget (>=2)")
		seed     = flag.Uint64("seed", 1, "random seed")
		bound    = flag.Float64("failure-bound", 0.05, "per-vertex failure probability bound")
		rounds   = flag.Int("rounds", 10, "alias resolution rounds (multilevel)")
		runs     = flag.Int("runs", 1, "trace the scenario this many times under derived seeds, reporting variance")
		workers  = flag.Int("workers", 0, "concurrent trace workers for -runs > 1 (0 = GOMAXPROCS; results are identical)")
		jsonOut  = flag.Bool("json", false, "emit the result as one JSON object")
		verbose  = flag.Bool("v", false, "also print the ground truth")
	)
	flag.Parse()

	var build func(*fakeroute.AddrAllocator, packet.Addr) *topo.Graph
	if *topoFile != "" {
		f, err := os.Open(*topoFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		loaded, err := traceio.ParseTopology(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		build = func(_ *fakeroute.AddrAllocator, dst packet.Addr) *topo.Graph {
			// Append the destination if the file's last hop is not it.
			last := loaded.Hop(loaded.NumHops() - 1)
			if len(last) == 1 && loaded.V(last[0]).Addr == dst {
				return loaded
			}
			end := loaded.AddVertex(loaded.NumHops(), dst)
			for _, u := range loaded.Hop(loaded.NumHops() - 2) {
				loaded.AddEdge(u, end)
			}
			return loaded
		}
	} else {
		var ok bool
		build, ok = shapes[*shape]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown shape %q; available: %v\n", *shape, shapeNames())
			os.Exit(2)
		}
	}
	var algorithm mmlpt.Algorithm
	switch *algo {
	case "single":
		algorithm = mmlpt.AlgoSingleFlow
	case "mda":
		algorithm = mmlpt.AlgoMDA
	case "mda-lite":
		algorithm = mmlpt.AlgoMDALite
	case "multilevel":
		algorithm = mmlpt.AlgoMultilevel
	default:
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *algo)
		os.Exit(2)
	}

	src := mmlpt.MustParseAddr("192.0.2.1")
	dst := mmlpt.MustParseAddr("198.51.100.77")

	if *runs > 1 {
		// Repeated tracing under derived seeds: one fresh scenario per
		// run, traced by a worker pool. Reports per-run packet counts and
		// the aggregate, the quick way to gauge an algorithm's cost
		// variance on a topology.
		if *jsonOut {
			fmt.Fprintln(os.Stderr, "-json emits a single trace record; it cannot be combined with -runs > 1")
			os.Exit(2)
		}
		probers := make([]mmlpt.Prober, *runs)
		var truth0 *mmlpt.Graph
		for i := range probers {
			n, truth := mmlpt.BuildScenario(*seed+uint64(i), src, dst, build)
			if i == 0 {
				truth0 = truth
			}
			probers[i] = mmlpt.NewSimProber(n, src, dst)
		}
		if *verbose {
			fmt.Printf("ground truth of run 0 (%s; later runs rebuild under seeds %d..%d):\n%s\n",
				*shape, *seed+1, *seed+uint64(*runs-1), truth0)
		}
		results := mmlpt.TraceEach(probers, mmlpt.Options{
			Algorithm: algorithm, Phi: *phi, Seed: *seed,
			FailureBound: *bound, Rounds: *rounds, Workers: *workers,
		})
		var total uint64
		reached, switched := 0, 0
		for i, r := range results {
			fmt.Printf("run %d: probes=%d reached=%v switched=%v\n",
				i, r.Probes(), r.IP.ReachedDst, r.IP.SwitchedToMDA)
			total += r.Probes()
			if r.IP.ReachedDst {
				reached++
			}
			if r.IP.SwitchedToMDA {
				switched++
			}
		}
		fmt.Printf("mean probes %.1f over %d runs, reached %d/%d, switched %d/%d\n",
			float64(total)/float64(len(results)), len(results),
			reached, len(results), switched, len(results))
		return
	}

	net, truth := mmlpt.BuildScenario(*seed, src, dst, build)
	if *verbose {
		fmt.Printf("ground truth (%s):\n%s\n", *shape, truth)
	}

	p := mmlpt.NewSimProber(net, src, dst)
	res := mmlpt.Trace(p, mmlpt.Options{
		Algorithm: algorithm, Phi: *phi, Seed: *seed,
		FailureBound: *bound, Rounds: *rounds,
	})

	if *jsonOut {
		jt := traceio.NewJSONTrace(src, dst, *algo, res.IP)
		if res.Multilevel != nil {
			jt.AttachMultilevel(res.Multilevel)
		}
		if err := jt.WriteJSONL(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("mmlpt %s -> %s  algo=%s probes=%d reached=%v switched=%v\n",
		src, dst, *algo, res.Probes(), res.IP.ReachedDst, res.IP.SwitchedToMDA)
	fmt.Print(res.IP.Graph)

	for i, d := range res.IP.Graph.Diamonds() {
		m := d.ComputeMetrics()
		fmt.Printf("diamond %d: %s..%s len=%d width=%d asym=%d meshed=%v meshed-ratio=%.2f\n",
			i, d.DivAddr, d.ConvAddr, m.MaxLength, m.MaxWidth,
			m.MaxWidthAsymmetry, m.Meshed, m.RatioMeshedHops)
	}

	if res.Multilevel != nil {
		fmt.Printf("\nalias resolution: %d trace + %d alias probes\n",
			res.Multilevel.TraceProbes, res.Multilevel.AliasProbes)
		for _, s := range alias.RouterSets(res.Multilevel.Sets) {
			fmt.Printf("router: %v\n", s.Addrs)
		}
		fmt.Printf("router-level topology:\n%s", res.Multilevel.RouterGraph)
	}
}
