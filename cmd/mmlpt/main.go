// Command mmlpt is the Multilevel MDA-Lite Paris Traceroute tool, run
// against a Fakeroute-simulated topology.
//
// Usage:
//
//	mmlpt -shape meshed48 -algo multilevel -phi 2
//	mmlpt -shape asymmetric -algo mda-lite -seed 7
//
// It prints the IP-level multipath topology hop by hop, the diamonds with
// their survey metrics and, for the multilevel algorithm, the resolved
// alias sets and the router-level topology.
package main

import (
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"sort"

	"mmlpt"
	"mmlpt/internal/alias"
	"mmlpt/internal/fakeroute"
	"mmlpt/internal/obs"
	"mmlpt/internal/packet"
	"mmlpt/internal/topo"
	"mmlpt/internal/traceio"
)

var shapes = map[string]func(*fakeroute.AddrAllocator, packet.Addr) *topo.Graph{
	"simplest":   fakeroute.SimplestDiamond,
	"fig1":       fakeroute.Fig1UnmeshedDiamond,
	"fig1meshed": fakeroute.Fig1MeshedDiamond,
	"maxlen2":    fakeroute.MaxLength2Diamond,
	"symmetric":  fakeroute.SymmetricDiamond,
	"asymmetric": fakeroute.AsymmetricDiamond,
	"meshed48":   fakeroute.MeshedDiamond48,
}

func shapeNames() []string {
	var names []string
	for n := range shapes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func main() {
	var (
		shape    = flag.String("shape", "fig1", fmt.Sprintf("simulated topology %v", shapeNames()))
		topoFile = flag.String("topology", "", "trace a topology file instead of a named shape")
		algo     = flag.String("algo", "mda-lite", "algorithm: single, mda, mda-lite, multilevel")
		phi      = flag.Int("phi", 2, "MDA-Lite meshing-test budget (>=2)")
		seed     = flag.Uint64("seed", 1, "random seed")
		bound    = flag.Float64("failure-bound", 0.05, "per-vertex failure probability bound")
		rounds   = flag.Int("rounds", 10, "alias resolution rounds (multilevel)")
		runs     = flag.Int("runs", 1, "trace the scenario this many times under derived seeds, reporting variance")
		workers  = flag.Int("workers", 0, "concurrent trace workers for -runs > 1 (0 = GOMAXPROCS; results are identical)")
		jsonOut  = flag.Bool("json", false, "emit the result as one JSON object")
		out      = flag.String("out", "", "with -runs > 1: stream one JSON trace record per run to this JSONL file")
		ckptPath = flag.String("checkpoint", "", "with -runs > 1: write an atomic progress checkpoint to this file")
		every    = flag.Int("checkpoint-every", 8, "runs between checkpoints")
		resume   = flag.Bool("resume", false, "resume a killed -runs batch from the checkpoint")
		progress = flag.Bool("progress", false, "with -runs > 1: report run/probe rates to stderr at the end")
		verbose  = flag.Bool("v", false, "also print the ground truth")
	)
	flag.Parse()

	var build func(*fakeroute.AddrAllocator, packet.Addr) *topo.Graph
	if *topoFile != "" {
		f, err := os.Open(*topoFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		loaded, err := traceio.ParseTopology(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		build = func(_ *fakeroute.AddrAllocator, dst packet.Addr) *topo.Graph {
			// Append the destination if the file's last hop is not it.
			last := loaded.Hop(loaded.NumHops() - 1)
			if len(last) == 1 && loaded.V(last[0]).Addr == dst {
				return loaded
			}
			end := loaded.AddVertex(loaded.NumHops(), dst)
			for _, u := range loaded.Hop(loaded.NumHops() - 2) {
				loaded.AddEdge(u, end)
			}
			return loaded
		}
	} else {
		var ok bool
		build, ok = shapes[*shape]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown shape %q; available: %v\n", *shape, shapeNames())
			os.Exit(2)
		}
	}
	var algorithm mmlpt.Algorithm
	switch *algo {
	case "single":
		algorithm = mmlpt.AlgoSingleFlow
	case "mda":
		algorithm = mmlpt.AlgoMDA
	case "mda-lite":
		algorithm = mmlpt.AlgoMDALite
	case "multilevel":
		algorithm = mmlpt.AlgoMultilevel
	default:
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *algo)
		os.Exit(2)
	}

	src := mmlpt.MustParseAddr("192.0.2.1")
	dst := mmlpt.MustParseAddr("198.51.100.77")

	if *runs > 1 {
		// Repeated tracing under derived seeds: one fresh scenario per
		// run, traced by a worker pool, each result streamed out the
		// moment its prefix of runs has completed. With -checkpoint the
		// batch is resumable: a killed batch re-run with -resume skips
		// finished runs and appends the remaining records to -out,
		// byte-identically to an uninterrupted batch.
		if *jsonOut {
			fmt.Fprintln(os.Stderr, "-json emits a single trace record; it cannot be combined with -runs > 1")
			os.Exit(2)
		}
		if *resume && *ckptPath == "" {
			fmt.Fprintln(os.Stderr, "-resume requires -checkpoint")
			os.Exit(2)
		}
		if *every <= 0 {
			*every = 1
		}
		fail := func(err error) {
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}

		// Fingerprint everything that shapes the batch, so a checkpoint
		// from a different experiment is refused on resume.
		h := fnv.New64a()
		fmt.Fprintf(h, "shape=%s|topo=%s|algo=%s|seed=%d|phi=%d|bound=%g|rounds=%d|runs=%d",
			*shape, *topoFile, *algo, *seed, *phi, *bound, *rounds, *runs)
		hash := h.Sum64()

		done := 0
		var resumeOffset int64
		if *resume {
			ck, err := traceio.ReadCheckpoint(*ckptPath)
			if err == nil {
				if err := ck.Matches("mmlpt-runs", hash, *runs); err != nil {
					fail(fmt.Errorf("checkpoint %s: %w", *ckptPath, err))
				}
				// The record log and the checkpoint travel together: a
				// mismatched -out would either truncate the log to zero
				// (offset unknown to the checkpoint) or silently drop the
				// already-written head records.
				if ck.Done > 0 && ck.Offset > 0 && *out == "" {
					fail(fmt.Errorf("checkpoint %s references a record log; pass the original -out", *ckptPath))
				}
				if ck.Done > 0 && ck.Offset == 0 && *out != "" {
					fail(fmt.Errorf("checkpoint %s was written without -out; resuming with -out would lose the first %d records", *ckptPath, ck.Done))
				}
				if ck.Done > 0 && *out != "" {
					// Prove -out is the checkpoint's own record log before
					// OpenJSONLAt truncates it.
					fail(traceio.ValidateJSONLPrefix(*out, ck.Offset, ck.Done))
				}
				done, resumeOffset = ck.Done, ck.Offset
			} else if !os.IsNotExist(err) {
				fail(err)
			}
		}
		if done >= *runs {
			fmt.Printf("all %d runs already complete (checkpoint %s)\n", *runs, *ckptPath)
			return
		}

		probers := make([]mmlpt.Prober, *runs-done)
		var truth0 *mmlpt.Graph
		for i := range probers {
			n, truth := mmlpt.BuildScenario(*seed+uint64(done+i), src, dst, build)
			if done+i == 0 {
				truth0 = truth
			}
			probers[i] = mmlpt.NewSimProber(n, src, dst)
		}
		if *verbose && truth0 != nil {
			fmt.Printf("ground truth of run 0 (%s; later runs rebuild under seeds %d..%d):\n%s\n",
				*shape, *seed+1, *seed+uint64(*runs-1), truth0)
		}

		var jw *traceio.JSONLWriter
		if *out != "" {
			var err error
			if done > 0 {
				jw, err = traceio.OpenJSONLAt(*out, resumeOffset)
			} else {
				jw, err = traceio.CreateJSONL(*out)
			}
			fail(err)
		}
		prog := obs.NewProgress()
		prog.Begin(*runs, done)
		count := done
		writeCheckpoint := func() error {
			var off int64
			if jw != nil {
				if err := jw.Sync(); err != nil {
					return err
				}
				off = jw.Offset()
			}
			ck := &traceio.Checkpoint{
				Kind: "mmlpt-runs", OptionsHash: hash, Seed: *seed,
				Total: *runs, Done: count, Offset: off,
			}
			return ck.WriteAtomic(*ckptPath)
		}
		// A write or checkpoint failure aborts the whole batch on the
		// spot (fail exits): the last checkpoint is durable, so the user
		// fixes the disk and re-runs with -resume rather than waiting for
		// the remaining traces to finish against a dead record log.
		onTrace := func(i int, r *mmlpt.Result) {
			fmt.Printf("run %d: probes=%d reached=%v switched=%v\n",
				i, r.Probes(), r.IP.ReachedDst, r.IP.SwitchedToMDA)
			prog.PairDone(r.Probes())
			if jw != nil {
				jt := traceio.NewJSONTrace(src, dst, *algo, r.IP)
				if r.Multilevel != nil {
					jt.AttachMultilevel(r.Multilevel)
				}
				fail(jw.Write(jt))
				prog.RecordEmitted()
			}
			count++
			if *ckptPath != "" && (count-done)%*every == 0 {
				fail(writeCheckpoint())
			}
		}

		results := mmlpt.TraceEach(probers, mmlpt.Options{
			Algorithm: algorithm, Phi: *phi, Seed: *seed,
			FailureBound: *bound, Rounds: *rounds, Workers: *workers,
			FirstIndex: done, OnTrace: onTrace,
		})
		if *ckptPath != "" {
			fail(writeCheckpoint())
		}
		if jw != nil {
			fail(jw.Close())
		}
		if *progress {
			fmt.Fprintln(os.Stderr, prog.Snapshot())
		}

		var total uint64
		reached, switched := 0, 0
		for _, r := range results {
			total += r.Probes()
			if r.IP.ReachedDst {
				reached++
			}
			if r.IP.SwitchedToMDA {
				switched++
			}
		}
		label := "runs"
		if done > 0 {
			label = fmt.Sprintf("resumed runs (%d skipped)", done)
		}
		fmt.Printf("mean probes %.1f over %d %s, reached %d/%d, switched %d/%d\n",
			float64(total)/float64(len(results)), len(results), label,
			reached, len(results), switched, len(results))
		return
	}

	net, truth := mmlpt.BuildScenario(*seed, src, dst, build)
	if *verbose {
		fmt.Printf("ground truth (%s):\n%s\n", *shape, truth)
	}

	p := mmlpt.NewSimProber(net, src, dst)
	res := mmlpt.Trace(p, mmlpt.Options{
		Algorithm: algorithm, Phi: *phi, Seed: *seed,
		FailureBound: *bound, Rounds: *rounds,
	})

	if *jsonOut {
		jt := traceio.NewJSONTrace(src, dst, *algo, res.IP)
		if res.Multilevel != nil {
			jt.AttachMultilevel(res.Multilevel)
		}
		if err := jt.WriteJSONL(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("mmlpt %s -> %s  algo=%s probes=%d reached=%v switched=%v\n",
		src, dst, *algo, res.Probes(), res.IP.ReachedDst, res.IP.SwitchedToMDA)
	fmt.Print(res.IP.Graph)

	for i, d := range res.IP.Graph.Diamonds() {
		m := d.ComputeMetrics()
		fmt.Printf("diamond %d: %s..%s len=%d width=%d asym=%d meshed=%v meshed-ratio=%.2f\n",
			i, d.DivAddr, d.ConvAddr, m.MaxLength, m.MaxWidth,
			m.MaxWidthAsymmetry, m.Meshed, m.RatioMeshedHops)
	}

	if res.Multilevel != nil {
		fmt.Printf("\nalias resolution: %d trace + %d alias probes\n",
			res.Multilevel.TraceProbes, res.Multilevel.AliasProbes)
		for _, s := range alias.RouterSets(res.Multilevel.Sets) {
			fmt.Printf("router: %v\n", s.Addrs)
		}
		fmt.Printf("router-level topology:\n%s", res.Multilevel.RouterGraph)
	}
}
