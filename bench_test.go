package mmlpt

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation (run with `go test -bench=. -benchmem`), plus
// ablation benches for the design choices DESIGN.md calls out. Benchmark
// scale is reduced relative to the paper (the full scale is available via
// cmd/paperfig -scale); the shape assertions live in the test suites.

import (
	"path/filepath"
	"runtime"
	"testing"

	"mmlpt/internal/atlas"
	"mmlpt/internal/atlas/serve"
	"mmlpt/internal/experiments"
	"mmlpt/internal/fakeroute"
	"mmlpt/internal/mda"
	"mmlpt/internal/mdalite"
	"mmlpt/internal/packet"
	"mmlpt/internal/prior"
	"mmlpt/internal/probe"
	"mmlpt/internal/survey"
)

var (
	benchSrc = packet.MustParseAddr("192.0.2.1")
	benchDst = packet.MustParseAddr("198.51.100.77")
)

// BenchmarkFig1DiamondCost regenerates the Sec 2.1/2.3.1 worked example:
// MDA vs MDA-Lite probe counts on the Fig 1 diamonds.
func BenchmarkFig1DiamondCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig1(experiments.Fig1Config{Runs: 5, Seed: uint64(i)})
	}
}

// BenchmarkFig2MeshingDetection regenerates the Fig 2 CDFs: Eq. (1)
// missing-meshing probabilities over the survey's meshed hop pairs.
func BenchmarkFig2MeshingDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.IPSurvey(experiments.SurveyConfig{Pairs: 150, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		_ = res.MeshMissCDF(survey.Measured)
		_ = res.MeshMissCDF(survey.Distinct)
	}
}

// BenchmarkFig3SimTopologies regenerates the Fig 3 discovery curves on the
// four Sec 2.4.1 topologies.
func BenchmarkFig3SimTopologies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig3(experiments.Fig3Config{Runs: 5, Seed: uint64(i)})
	}
}

// BenchmarkFig4Comparative regenerates the Fig 4 ratio CDFs (five tool
// variants over diamond-bearing pairs).
func BenchmarkFig4Comparative(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig4(experiments.Fig4Config{Pairs: 30, Seed: uint64(i)})
	}
}

// BenchmarkTable1Aggregate regenerates the Table 1 aggregated-topology
// ratios (same pipeline as Fig 4; kept separate so the table has its own
// bench target).
func BenchmarkTable1Aggregate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig4(experiments.Fig4Config{Pairs: 30, Seed: uint64(i) + 1000})
		_ = r.Table1
	}
}

// BenchmarkSec3FailureValidation regenerates the Fakeroute statistical
// validation of the MDA failure bound on the simplest diamond.
func BenchmarkSec3FailureValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Sec3Validation(experiments.Sec3Config{
			Samples: 5, RunsPerSample: 100, Seed: uint64(i),
		})
	}
}

// BenchmarkFig5AliasRounds regenerates the round-by-round alias
// resolution precision/recall/probe-ratio evaluation.
func BenchmarkFig5AliasRounds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig5(experiments.Fig5Config{Pairs: 10, Rounds: 4, Seed: uint64(i)})
	}
}

// BenchmarkTable2DirectIndirect regenerates the indirect-vs-direct alias
// outcome matrix.
func BenchmarkTable2DirectIndirect(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table2(experiments.Table2Config{Pairs: 10, Rounds: 3, Seed: uint64(i)})
	}
}

// BenchmarkFig7WidthAsymmetry through BenchmarkFig11Joint regenerate the
// Sec 5.1 IP-level survey figures.
func BenchmarkFig7WidthAsymmetry(b *testing.B) {
	benchIPSurveyFigure(b, func(r *survey.Result) {
		_ = r.WidthAsymmetryDist(survey.Measured)
		_ = r.WidthAsymmetryDist(survey.Distinct)
	})
}

func BenchmarkFig8MaxProbDiff(b *testing.B) {
	benchIPSurveyFigure(b, func(r *survey.Result) {
		_ = r.MaxProbDiffCDF(survey.Measured)
		_ = r.MaxProbDiffCDF(survey.Distinct)
	})
}

func BenchmarkFig9MeshedRatio(b *testing.B) {
	benchIPSurveyFigure(b, func(r *survey.Result) {
		_ = r.MeshedRatioCDF(survey.Measured)
		_ = r.MeshedRatioCDF(survey.Distinct)
	})
}

func BenchmarkFig10LengthWidth(b *testing.B) {
	benchIPSurveyFigure(b, func(r *survey.Result) {
		_ = r.LengthDist(survey.Measured)
		_ = r.WidthDist(survey.Measured)
		_ = r.LengthDist(survey.Distinct)
		_ = r.WidthDist(survey.Distinct)
	})
}

func BenchmarkFig11Joint(b *testing.B) {
	benchIPSurveyFigure(b, func(r *survey.Result) {
		_ = r.JointLengthWidth(survey.Measured)
		_ = r.JointLengthWidth(survey.Distinct)
	})
}

func benchIPSurveyFigure(b *testing.B, extract func(*survey.Result)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.IPSurvey(experiments.SurveyConfig{Pairs: 150, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		extract(res)
	}
}

// BenchmarkFig12RouterSizes, BenchmarkTable3AliasEffect, BenchmarkFig13 and
// BenchmarkFig14 regenerate the Sec 5.2 router-level survey artifacts.
func BenchmarkFig12RouterSizes(b *testing.B) {
	benchRouterSurvey(b, func(res *survey.Result, recs []survey.RouterRecord) {
		_, _ = survey.RouterSizeCDFs(recs)
	})
}

func BenchmarkTable3AliasEffect(b *testing.B) {
	benchRouterSurvey(b, func(res *survey.Result, recs []survey.RouterRecord) {
		_ = survey.Table3(res, recs)
	})
}

func BenchmarkFig13WidthBeforeAfter(b *testing.B) {
	benchRouterSurvey(b, func(res *survey.Result, recs []survey.RouterRecord) {
		_, _ = survey.WidthBeforeAfter(res, recs)
	})
}

func BenchmarkFig14JointBeforeAfter(b *testing.B) {
	benchRouterSurvey(b, func(res *survey.Result, recs []survey.RouterRecord) {
		_ = survey.JointWidthBeforeAfter(res, recs)
	})
}

func benchRouterSurvey(b *testing.B, extract func(*survey.Result, []survey.RouterRecord)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, recs, err := experiments.RouterSurvey(experiments.SurveyConfig{
			Pairs: 30, Seed: uint64(i), Rounds: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
		extract(res, recs)
	}
}

// ---- Ablation benches (DESIGN.md "design choices") ----

// BenchmarkAblationPhi contrasts the meshing-test budget phi=2 vs phi=4 on
// a diamond with adjacent multi-vertex hops.
func BenchmarkAblationPhi(b *testing.B) {
	for _, phi := range []int{2, 4} {
		phi := phi
		b.Run(map[int]string{2: "phi2", 4: "phi4"}[phi], func(b *testing.B) {
			var probes uint64
			for i := 0; i < b.N; i++ {
				net, _ := fakeroute.BuildScenario(uint64(i), benchSrc, benchDst, fakeroute.SymmetricDiamond)
				p := probe.NewSimProber(net, benchSrc, benchDst)
				p.Retries = 0
				res := mdalite.Trace(p, mda.Config{Seed: uint64(i)}, phi)
				probes += res.Probes
			}
			b.ReportMetric(float64(probes)/float64(b.N), "probes/trace")
		})
	}
}

// BenchmarkAblationStoppingPoints contrasts the 95% table against the
// tighter Veitch Table 1 on the wide diamond.
func BenchmarkAblationStoppingPoints(b *testing.B) {
	tables := map[string][]int{
		"eps0.05":  mda.Default95(64),
		"veitchT1": mda.VeitchTable1(64),
	}
	for name, nk := range tables {
		nk := nk
		b.Run(name, func(b *testing.B) {
			var probes uint64
			for i := 0; i < b.N; i++ {
				net, _ := fakeroute.BuildScenario(uint64(i), benchSrc, benchDst, fakeroute.MaxLength2Diamond)
				p := probe.NewSimProber(net, benchSrc, benchDst)
				p.Retries = 0
				res := mda.Trace(p, mda.Config{Seed: uint64(i), Stop: nk})
				probes += res.Probes
			}
			b.ReportMetric(float64(probes)/float64(b.N), "probes/trace")
		})
	}
}

// BenchmarkAblationNodeControl measures the node-control overhead delta:
// MDA (per-vertex, node control) vs MDA-Lite (hop-by-hop, none) on the
// unmeshed Fig 1 diamond.
func BenchmarkAblationNodeControl(b *testing.B) {
	algos := map[string]func(p probe.Prober, seed uint64) *mda.Result{
		"mda": func(p probe.Prober, seed uint64) *mda.Result {
			return mda.Trace(p, mda.Config{Seed: seed})
		},
		"mdalite": func(p probe.Prober, seed uint64) *mda.Result {
			return mdalite.Trace(p, mda.Config{Seed: seed}, 2)
		},
	}
	for name, run := range algos {
		run := run
		b.Run(name, func(b *testing.B) {
			var probes uint64
			for i := 0; i < b.N; i++ {
				net, _ := fakeroute.BuildScenario(uint64(i), benchSrc, benchDst, fakeroute.Fig1UnmeshedDiamond)
				p := probe.NewSimProber(net, benchSrc, benchDst)
				p.Retries = 0
				res := run(p, uint64(i))
				probes += res.Probes
			}
			b.ReportMetric(float64(probes)/float64(b.N), "probes/trace")
		})
	}
}

// BenchmarkAblationFlowReuse contrasts the MDA-Lite's reuse of
// previous-hop flow identifiers against minting fresh flows at every hop:
// reuse seeds edges for free, fresh flows push that work onto the
// deterministic edge-completion step.
func BenchmarkAblationFlowReuse(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "reuse"
		if disable {
			name = "fresh"
		}
		disable := disable
		b.Run(name, func(b *testing.B) {
			var probes uint64
			for i := 0; i < b.N; i++ {
				net, _ := fakeroute.BuildScenario(uint64(i), benchSrc, benchDst, fakeroute.SymmetricDiamond)
				p := probe.NewSimProber(net, benchSrc, benchDst)
				p.Retries = 0
				res := mdalite.Trace(p, mda.Config{Seed: uint64(i), DisableFlowReuse: disable}, 2)
				probes += res.Probes
			}
			b.ReportMetric(float64(probes)/float64(b.N), "probes/trace")
		})
	}
}

// BenchmarkProbeSerialize and BenchmarkReplyParse measure the wire codec
// hot paths.
func BenchmarkProbeSerialize(b *testing.B) {
	pr := packet.Probe{Src: benchSrc, Dst: benchDst, FlowID: 7, TTL: 5, Checksum: 99}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = pr.Serialize()
	}
}

func BenchmarkReplyParse(b *testing.B) {
	net, _ := fakeroute.BuildScenario(1, benchSrc, benchDst, fakeroute.SimplestDiamond)
	pr := packet.Probe{Src: benchSrc, Dst: benchDst, FlowID: 7, TTL: 1, Checksum: 99}
	raw := net.HandleProbe(pr.Serialize())
	if raw == nil {
		b.Fatal("no reply")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := packet.ParseReply(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSurveySerial and BenchmarkSurveyParallel contrast the
// worker-pool survey runner at Workers=1 against all cores on one shared
// universe. The runner aggregates in pair order, so both configurations
// produce identical results; only the wall clock differs (expect the
// parallel variant to approach a core-count speedup on multi-core
// hardware, as the per-pair traces share no mutable state).
func BenchmarkSurveySerial(b *testing.B)   { benchSurveyWorkers(b, 1) }
func BenchmarkSurveyParallel(b *testing.B) { benchSurveyWorkers(b, runtime.GOMAXPROCS(0)) }

func benchSurveyWorkers(b *testing.B, workers int) {
	b.Helper()
	u := survey.Generate(survey.GenConfig{Seed: 5, Pairs: 200})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := survey.Run(u, survey.RunConfig{
			Algo: survey.AlgoMDALite, Retries: 1, Workers: workers,
			Trace: mda.Config{Seed: 5},
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Outcomes) != 200 {
			b.Fatalf("outcomes = %d", len(res.Outcomes))
		}
	}
	b.ReportMetric(float64(200*b.N)/b.Elapsed().Seconds(), "pairs/s")
}

// BenchmarkSurveyStreaming measures the streaming pipeline against the
// in-memory baseline above: the same 200-pair survey with every record
// encoded, written to a JSONL sink and folded into a record aggregate,
// with periodic checkpoints. The delta over BenchmarkSurveyParallel is
// the cost of incremental archival.
func BenchmarkSurveyStreaming(b *testing.B) {
	u := survey.Generate(survey.GenConfig{Seed: 5, Pairs: 200})
	dir := b.TempDir()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jsonl := survey.NewJSONLSink(filepath.Join(dir, "records.jsonl"))
		res, err := survey.Run(u, survey.RunConfig{
			Algo: survey.AlgoMDALite, Retries: 1,
			Workers:    runtime.GOMAXPROCS(0),
			Trace:      mda.Config{Seed: 5},
			Sinks:      []survey.Sink{jsonl, survey.NewAggregateSink()},
			Checkpoint: filepath.Join(dir, "records.ckpt"),
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := jsonl.Close(); err != nil {
			b.Fatal(err)
		}
		if len(res.Outcomes) != 200 {
			b.Fatalf("outcomes = %d", len(res.Outcomes))
		}
	}
	b.ReportMetric(float64(200*b.N)/b.Elapsed().Seconds(), "pairs/s")
}

// BenchmarkSurveyRetraceUnseeded and BenchmarkSurveyRetraceWithPrior
// contrast a re-survey of an already-atlased universe without and with
// the atlas prior: the headline re-trace claim (≥30% fewer probes at
// equal recall) as a wall-clock benchmark. Setup — the first survey
// pass, the snapshot write and the prior extraction through the serving
// layer — happens outside the timer; the measured region is only the
// re-trace run itself.
func BenchmarkSurveyRetraceUnseeded(b *testing.B)  { benchSurveyRetrace(b, false) }
func BenchmarkSurveyRetraceWithPrior(b *testing.B) { benchSurveyRetrace(b, true) }

func benchSurveyRetrace(b *testing.B, seeded bool) {
	b.Helper()
	u := survey.Generate(survey.GenConfig{Seed: 5, Pairs: 200})
	var ix *prior.Index
	if seeded {
		as := survey.NewAtlasSink(atlas.Options{})
		if _, err := survey.Run(u, survey.RunConfig{
			Algo: survey.AlgoMDALite, Retries: 1,
			Trace: mda.Config{Seed: 5},
			Sinks: []survey.Sink{as},
		}); err != nil {
			b.Fatal(err)
		}
		path := filepath.Join(b.TempDir(), "prior.atlas")
		if err := as.Atlas.Save(path); err != nil {
			b.Fatal(err)
		}
		svc, err := serve.Open(path, serve.Options{})
		if err != nil {
			b.Fatal(err)
		}
		ix, err = prior.FromService(svc)
		svc.Close()
		if err != nil {
			b.Fatal(err)
		}
	}
	var probes uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := survey.Run(u, survey.RunConfig{
			Algo: survey.AlgoMDALite, Retries: 1,
			Workers: runtime.GOMAXPROCS(0),
			Trace:   mda.Config{Seed: 6},
			Prior:   ix,
		})
		if err != nil {
			b.Fatal(err)
		}
		probes += res.TotalProbes
	}
	b.ReportMetric(float64(probes)/float64(b.N), "probes/run")
}

// BenchmarkSimProbeRoundTrip measures one full probe round trip through
// the prober and simulator (serialize, route, craft reply, parse): the
// hot path of every survey. In steady state it is allocation-free — the
// probe serializes into prober scratch, the session crafts the reply into
// session scratch and the parsed reply comes from a chunked arena; see
// internal/fakeroute's BenchmarkProbeRoundTrip for the session-level
// breakdown (memoized walk vs fresh walk vs per-packet bypass).
func BenchmarkSimProbeRoundTrip(b *testing.B) {
	net, _ := fakeroute.BuildScenario(1, benchSrc, benchDst, fakeroute.MeshedDiamond48)
	p := probe.NewSimProber(net, benchSrc, benchDst)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Probe(uint16(i%1000), 3)
	}
}
