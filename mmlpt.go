// Package mmlpt is Multilevel MDA-Lite Paris Traceroute: a from-scratch Go
// implementation of the IMC 2018 paper by Vermeulen, Strowes, Fourmaux and
// Friedman.
//
// The package exposes four capabilities:
//
//   - Multipath route tracing at the IP level with the classic Multipath
//     Detection Algorithm (MDA), the reduced-overhead MDA-Lite, or a
//     single-flow Paris traceroute (Algorithm selection in Options).
//   - Multilevel tracing: the MDA-Lite trace plus integrated alias
//     resolution (Monotonic Bounds Test, Network Fingerprinting, MPLS
//     labeling), yielding a router-level topology next to the IP-level one.
//   - Fakeroute, a simulator that runs the tracer over ground-truth
//     multipath topologies and validates its failure-probability bounds.
//   - Survey tooling over a synthetic Internet calibrated to the paper's
//     reported distributions.
//
// Quick start (trace a simulated diamond):
//
//	net, _ := mmlpt.BuildScenario(1, src, dst, mmlpt.SimplestDiamond)
//	prober := mmlpt.NewSimProber(net, src, dst)
//	res := mmlpt.Trace(prober, mmlpt.Options{Algorithm: mmlpt.AlgoMDALite})
//	fmt.Print(res.IP.Graph)
//
// See the examples directory for runnable programs and DESIGN.md for the
// system inventory.
package mmlpt

import (
	"mmlpt/internal/alias"
	"mmlpt/internal/core"
	"mmlpt/internal/fakeroute"
	"mmlpt/internal/mda"
	"mmlpt/internal/mdalite"
	"mmlpt/internal/nprand"
	"mmlpt/internal/obs"
	"mmlpt/internal/packet"
	"mmlpt/internal/par"
	"mmlpt/internal/probe"
	"mmlpt/internal/topo"
)

// Addr is an IPv4 address.
type Addr = packet.Addr

// ParseAddr parses a dotted-quad IPv4 address.
func ParseAddr(s string) (Addr, error) { return packet.ParseAddr(s) }

// MustParseAddr is ParseAddr that panics on error.
func MustParseAddr(s string) Addr { return packet.MustParseAddr(s) }

// Graph is a multipath route topology (hops of IP interfaces with edges).
type Graph = topo.Graph

// Diamond is a load-balanced subtopology between a divergence and a
// convergence point.
type Diamond = topo.Diamond

// DiamondMetrics bundles the survey metrics of a diamond.
type DiamondMetrics = topo.Metrics

// Prober sends probes toward one destination; implementations exist for
// the Fakeroute simulator (NewSimProber) and can be added for raw sockets.
type Prober = probe.Prober

// Network is a Fakeroute simulated network.
type Network = fakeroute.Network

// Router is a simulated router.
type Router = fakeroute.Router

// AddrAllocator hands out sequential addresses for topology builders.
type AddrAllocator = fakeroute.AddrAllocator

// PathBuilder assembles ground-truth path topologies hop by hop.
type PathBuilder = fakeroute.PathBuilder

// Observations accumulates alias-resolution measurement by-products.
type Observations = obs.Observations

// AliasSet is one resolved alias set.
type AliasSet = alias.Set

// Algorithm selects the tracing algorithm.
type Algorithm int

const (
	// AlgoMDALite is the paper's reduced-overhead algorithm (default).
	AlgoMDALite Algorithm = iota
	// AlgoMDA is the classic Multipath Detection Algorithm.
	AlgoMDA
	// AlgoSingleFlow traces one flow only (RIPE Atlas style).
	AlgoSingleFlow
	// AlgoMultilevel runs the MDA-Lite plus integrated alias resolution.
	AlgoMultilevel
)

// Options parametrizes Trace.
type Options struct {
	// Algorithm selects the tracer (default AlgoMDALite).
	Algorithm Algorithm
	// FailureBound is the per-vertex failure probability bound used to
	// derive the MDA stopping points (default 0.05, the 95% table).
	FailureBound float64
	// Phi is the MDA-Lite meshing-test budget (default 2).
	Phi int
	// MaxTTL bounds trace depth (default 32).
	MaxTTL int
	// Seed drives stochastic flow choice; equal seeds reproduce runs over
	// a deterministic network.
	Seed uint64
	// Rounds and ProbesPerRound configure multilevel alias resolution
	// (defaults 10 and 30).
	Rounds, ProbesPerRound int
	// Workers is the trace concurrency used by TraceEach (one trace per
	// prober at a time; a single Trace call is unaffected). Zero selects
	// GOMAXPROCS, one forces serial execution. Per-trace seeds are
	// derived deterministically, so results are identical for every
	// worker count.
	Workers int
	// OnTrace, when non-nil, is invoked by TraceEach for each result in
	// index order, on the calling goroutine, the moment its contiguous
	// prefix of traces has completed — the streaming observer used to
	// write records or checkpoints incrementally instead of waiting for
	// the whole batch. The index passed is FirstIndex + the prober's
	// position.
	OnTrace func(i int, r *Result)
	// FirstIndex offsets the per-trace seed derivation: trace i of the
	// prober slice runs with IndexedSeed(Seed, FirstIndex+i). A run
	// resumed from a checkpoint sets it to the number of traces already
	// completed so the remaining traces reuse their original seeds.
	FirstIndex int
}

// Result is the outcome of a trace.
type Result struct {
	// IP is the interface-level result (graph, probes, reachability).
	IP *mda.Result
	// Multilevel is set for AlgoMultilevel: alias sets, router graph,
	// per-round snapshots.
	Multilevel *core.Result
}

// Probes returns the total packets the trace sent.
func (r *Result) Probes() uint64 {
	if r.Multilevel != nil {
		return r.Multilevel.TraceProbes + r.Multilevel.AliasProbes
	}
	return r.IP.Probes
}

// traceConfig converts Options to the internal configuration.
func (o Options) traceConfig() mda.Config {
	cfg := mda.Config{MaxTTL: o.MaxTTL, Seed: o.Seed}
	if o.FailureBound > 0 {
		cfg.Stop = mda.StoppingPoints(o.FailureBound, 128)
	}
	return cfg
}

// Trace runs the selected algorithm toward the prober's destination.
func Trace(p Prober, o Options) *Result {
	cfg := o.traceConfig()
	phi := o.Phi
	if phi < mdalite.DefaultPhi {
		phi = mdalite.DefaultPhi
	}
	switch o.Algorithm {
	case AlgoMDA:
		return &Result{IP: mda.Trace(p, cfg)}
	case AlgoSingleFlow:
		return &Result{IP: mda.TraceSingleFlow(p, cfg)}
	case AlgoMultilevel:
		ml := core.Trace(p, core.Options{
			Trace: cfg, Phi: phi,
			Rounds: o.Rounds, ProbesPerRound: o.ProbesPerRound,
		})
		return &Result{IP: ml.IP, Multilevel: ml}
	default:
		return &Result{IP: mdalite.Trace(p, cfg, phi)}
	}
}

// TraceEach traces every prober concurrently with o.Workers workers and
// returns the results in prober order. Trace i runs with seed
// nprand.IndexedSeed(o.Seed, o.FirstIndex+i) — the same per-index
// derivation the survey runner uses — so the results are independent of
// the worker count and identical to calling Trace serially with those
// seeds. When o.OnTrace is set it observes each result in index order as
// soon as all earlier traces have completed, while later traces are
// still in flight. Probers must target distinct (source, destination)
// pairs or at least be backed by independent state; probers from
// NewSimProber over any mix of networks and pairs qualify.
func TraceEach(probers []Prober, o Options) []*Result {
	results := make([]*Result, len(probers))
	par.Ordered(len(probers), o.Workers, func(i int) *Result {
		oi := o
		oi.Seed = nprand.IndexedSeed(o.Seed, o.FirstIndex+i)
		return Trace(probers[i], oi)
	}, func(i int, r *Result) {
		results[i] = r
		if o.OnTrace != nil {
			o.OnTrace(o.FirstIndex+i, r)
		}
	})
	return results
}

// StoppingPoints exposes the MDA stopping-point table n_k for a given
// per-vertex failure bound.
func StoppingPoints(failureBound float64, maxK int) []int {
	return mda.StoppingPoints(failureBound, maxK)
}

// NewNetwork creates an empty Fakeroute network.
func NewNetwork(seed uint64) *Network { return fakeroute.NewNetwork(seed) }

// NewSimProber returns a prober tracing src→dst over the simulated
// network.
func NewSimProber(n *Network, src, dst Addr) Prober {
	return probe.NewSimProber(n, src, dst)
}

// NewAddrAllocator starts sequential address allocation at base.
func NewAddrAllocator(base Addr) *AddrAllocator { return fakeroute.NewAddrAllocator(base) }

// NewPathBuilder starts a ground-truth path whose hop 0 is a fresh single
// vertex.
func NewPathBuilder(alloc *AddrAllocator) *PathBuilder { return fakeroute.NewPathBuilder(alloc) }

// BuildScenario registers build's topology as the (src, dst) path on a
// fresh network with one router per interface.
func BuildScenario(seed uint64, src, dst Addr, build func(*AddrAllocator, Addr) *Graph) (*Network, *Graph) {
	net, path := fakeroute.BuildScenario(seed, src, dst, build)
	return net, path.Graph
}

// Canonical topologies from the paper's evaluation (Sec 2.4.1, Sec 3,
// Fig 1), usable with BuildScenario.
var (
	SimplestDiamond     = fakeroute.SimplestDiamond
	Fig1UnmeshedDiamond = fakeroute.Fig1UnmeshedDiamond
	Fig1MeshedDiamond   = fakeroute.Fig1MeshedDiamond
	MaxLength2Diamond   = fakeroute.MaxLength2Diamond
	SymmetricDiamond    = fakeroute.SymmetricDiamond
	AsymmetricDiamond   = fakeroute.AsymmetricDiamond
	MeshedDiamond48     = fakeroute.MeshedDiamond48
)

// GraphFailureProb returns the exact probability that the MDA with the
// given stopping points fails to discover the complete ground-truth
// topology (the Fakeroute validation primitive).
func GraphFailureProb(g *Graph, stop []int) float64 {
	return fakeroute.GraphFailureProb(g, stop)
}
